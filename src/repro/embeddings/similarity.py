"""Cosine similarity and vectorized top-k semantic search.

This replaces SBERT's ``util.semantic_search``: given a query embedding and a
matrix of cached embeddings, return the top-k most similar cached entries and
their cosine scores.  The search is a single (chunked) matrix multiplication,
which keeps per-probe cost O(N * d) — the quantity measured in the paper's
Figure 10(b) search-time experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cosine similarity between rows of ``a`` and rows of ``b``.

    Accepts 1-D or 2-D inputs; returns a scalar for two 1-D inputs, otherwise
    an ``(n_a, n_b)`` matrix.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scalar = a.ndim == 1 and b.ndim == 1
    A = np.atleast_2d(a)
    B = np.atleast_2d(b)
    if A.shape[1] != B.shape[1]:
        raise ValueError(f"dimension mismatch: {A.shape[1]} vs {B.shape[1]}")
    a_norm = np.linalg.norm(A, axis=1, keepdims=True)
    b_norm = np.linalg.norm(B, axis=1, keepdims=True)
    a_safe = A / np.where(a_norm > 1e-12, a_norm, 1.0)
    b_safe = B / np.where(b_norm > 1e-12, b_norm, 1.0)
    sims = a_safe @ b_safe.T
    return float(sims[0, 0]) if scalar else sims


@dataclass(frozen=True)
class SearchHit:
    """A single semantic-search result."""

    index: int
    score: float


def chunked_topk(
    normalized_queries: np.ndarray,
    corpus: np.ndarray,
    top_k: int,
    chunk_size: int = 65536,
    corpus_prenormalized: bool = False,
) -> "tuple[np.ndarray, np.ndarray]":
    """Chunked top-k merge: the shared core of every cosine search.

    Streams the corpus in ``chunk_size`` row blocks, computes one matmul per
    block and keeps a running top-k per query, so peak extra memory is bounded
    by the chunk regardless of corpus size.  Both :func:`semantic_search` and
    :class:`repro.index.FlatIndex` search through this routine.

    Parameters
    ----------
    normalized_queries:
        ``(q, d)`` array of **unit-norm** query rows.
    corpus:
        ``(n, d)`` corpus matrix with ``n >= 1``.
    top_k:
        Candidates kept per query (callers cap it at the corpus size).
    chunk_size:
        Corpus rows per matmul block.
    corpus_prenormalized:
        When True the corpus rows are already unit-norm (the incremental
        index's invariant) and per-chunk normalization is skipped — this is
        what removes the per-lookup corpus pass.

    Returns
    -------
    ``(scores, indices)`` arrays of shape ``(q, k)`` with
    ``k = min(top_k, n_corpus)``, each row sorted by descending score.  Every
    returned score is finite (the ``-inf`` merge sentinel never survives,
    since k is capped at the corpus size).
    """
    n_queries = normalized_queries.shape[0]
    n_corpus = corpus.shape[0]
    k = min(top_k, n_corpus)
    best_scores = np.full((n_queries, k), -np.inf, dtype=np.result_type(normalized_queries, corpus))
    best_indices = np.zeros((n_queries, k), dtype=np.int64)

    for start in range(0, n_corpus, chunk_size):
        chunk = corpus[start : start + chunk_size]
        if not corpus_prenormalized:
            c_norm = np.linalg.norm(chunk, axis=1, keepdims=True)
            chunk = chunk / np.where(c_norm > 1e-12, c_norm, 1.0)
        sims = normalized_queries @ chunk.T  # (q, chunk)
        # Merge this chunk's candidates with the running best.
        combined_scores = np.concatenate([best_scores, sims], axis=1)
        combined_indices = np.concatenate(
            [best_indices, np.broadcast_to(np.arange(start, start + chunk.shape[0]), sims.shape)],
            axis=1,
        )
        top = np.argpartition(-combined_scores, kth=k - 1, axis=1)[:, :k]
        rows = np.arange(n_queries)[:, None]
        best_scores = combined_scores[rows, top]
        best_indices = combined_indices[rows, top]

    order = np.argsort(-best_scores, axis=1)
    rows = np.arange(n_queries)[:, None]
    return best_scores[rows, order], best_indices[rows, order]


def semantic_search(
    query_embeddings: np.ndarray,
    corpus_embeddings: np.ndarray,
    top_k: int = 5,
    score_threshold: float | None = None,
    chunk_size: int = 65536,
) -> List[List[SearchHit]]:
    """Top-k cosine search of query embeddings against a corpus.

    This is the brute-force reference: the corpus is re-normalized on every
    call, which costs a full extra pass over the matrix.  Long-lived caches
    should search through :class:`repro.index.FlatIndex`, which keeps rows
    pre-normalized and skips that pass.

    Parameters
    ----------
    query_embeddings:
        ``(q, d)`` or ``(d,)`` array of query embeddings.
    corpus_embeddings:
        ``(n, d)`` array of cached embeddings.
    top_k:
        Number of hits per query (fewer if the corpus is smaller).
    score_threshold:
        If given, drop hits scoring below the threshold.
    chunk_size:
        Corpus rows processed per matmul chunk, bounding peak memory.

    Returns
    -------
    One list of :class:`SearchHit` (sorted by descending score) per query.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    queries = np.atleast_2d(np.asarray(query_embeddings, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus_embeddings, dtype=np.float64))
    n_queries = queries.shape[0]
    if corpus.size == 0:
        return [[] for _ in range(n_queries)]
    if queries.shape[1] != corpus.shape[1]:
        raise ValueError(
            f"query dim {queries.shape[1]} != corpus dim {corpus.shape[1]}"
        )

    q_norm = np.linalg.norm(queries, axis=1, keepdims=True)
    queries_n = queries / np.where(q_norm > 1e-12, q_norm, 1.0)

    best_scores, best_indices = chunked_topk(
        queries_n, corpus, top_k=top_k, chunk_size=chunk_size
    )

    results: List[List[SearchHit]] = []
    for qi in range(n_queries):
        hits = []
        for j in range(best_scores.shape[1]):
            score = float(best_scores[qi, j])
            if not np.isfinite(score):
                continue
            if score_threshold is not None and score < score_threshold:
                continue
            hits.append(SearchHit(index=int(best_indices[qi, j]), score=score))
        results.append(hits)
    return results


def pairwise_cosine(pairs_a: np.ndarray, pairs_b: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity between two equally-shaped batches."""
    A = np.atleast_2d(np.asarray(pairs_a, dtype=np.float64))
    B = np.atleast_2d(np.asarray(pairs_b, dtype=np.float64))
    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    a_norm = np.linalg.norm(A, axis=1)
    b_norm = np.linalg.norm(B, axis=1)
    denom = a_norm * b_norm
    dots = np.einsum("ij,ij->i", A, B)
    return dots / np.where(denom > 1e-12, denom, 1.0)
