"""Word and character n-gram tokenization.

The paper relies on subword transformer tokenizers (SentencePiece / WordPiece).
For the NumPy substitute we use a deterministic word tokenizer augmented with
character n-grams, which gives the featurizer robustness to morphological
variation ("color" vs "colors", "plot" vs "plotting") — the property the
subword vocabularies provide in the original models.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

_WORD_RE = re.compile(r"[a-z0-9']+")

# A small, fixed stop-word list.  Queries to LLM services are short; dropping
# ubiquitous function words sharpens the lexical signal for similarity.  The
# second block removes question *scaffolding* ("what is the best way to ...",
# "tips for ...", "walk me through ...") — those words are shared by nearly
# every query regardless of meaning, and keeping them inflates the similarity
# of unrelated queries, which is exactly what a semantic cache must avoid.
DEFAULT_STOPWORDS = frozenset(
    """a an the is are was were be been being am do does did to of in on at by
    for with about into over after under and or but if then than as it its this
    that these those i you he she we they my your his her our their me him them
    what which who whom can could should would will shall may might must
    how best way good tips steps step approach show tell walk need help
    please simple terms example quickly possible thanks let know through via
    guide
    """.split()
)


@dataclass(frozen=True)
class TokenizerConfig:
    """Configuration for :class:`Tokenizer`.

    Attributes
    ----------
    lowercase:
        Whether to lowercase text before tokenization.
    char_ngram_min, char_ngram_max:
        Inclusive range of character n-gram lengths generated per word.
        Set ``char_ngram_max`` to 0 to disable character n-grams.
    remove_stopwords:
        Drop common English function words from the *word* tokens (character
        n-grams are still produced for them, preserving some signal).
    word_boundary_marker:
        Character wrapped around each word before character n-grams are
        extracted, so prefixes/suffixes are distinguishable from interiors.
    """

    lowercase: bool = True
    char_ngram_min: int = 3
    char_ngram_max: int = 4
    remove_stopwords: bool = True
    word_boundary_marker: str = "#"
    stopwords: frozenset = field(default=DEFAULT_STOPWORDS)

    def __post_init__(self) -> None:
        if self.char_ngram_max and self.char_ngram_min > self.char_ngram_max:
            raise ValueError(
                "char_ngram_min must be <= char_ngram_max "
                f"(got {self.char_ngram_min} > {self.char_ngram_max})"
            )
        if self.char_ngram_min < 1:
            raise ValueError("char_ngram_min must be >= 1")


class Tokenizer:
    """Deterministic word + character n-gram tokenizer.

    Examples
    --------
    >>> tok = Tokenizer()
    >>> tokens = tok.tokenize("Plot a line in Python")
    >>> "plot" in tokens and "python" in tokens
    True
    """

    def __init__(self, config: TokenizerConfig | None = None) -> None:
        self.config = config or TokenizerConfig()

    def words(self, text: str) -> List[str]:
        """Return the word tokens of ``text`` (stop-words removed if configured)."""
        if self.config.lowercase:
            text = text.lower()
        words = _WORD_RE.findall(text)
        if self.config.remove_stopwords:
            kept = [w for w in words if w not in self.config.stopwords]
            # Never return an empty token list for a non-empty query: fall back
            # to the raw words so that e.g. "What is it?" still has features.
            if kept:
                return kept
        return words

    def char_ngrams(self, word: str) -> List[str]:
        """Return boundary-marked character n-grams for a single word."""
        cfg = self.config
        if not cfg.char_ngram_max:
            return []
        marked = f"{cfg.word_boundary_marker}{word}{cfg.word_boundary_marker}"
        grams: List[str] = []
        for n in range(cfg.char_ngram_min, cfg.char_ngram_max + 1):
            if len(marked) < n:
                continue
            grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
        return grams

    def tokenize(self, text: str) -> List[str]:
        """Return word tokens followed by character n-gram tokens.

        Character n-gram tokens are prefixed with ``"cg:"`` so they hash into
        a distinct feature subspace from whole words.
        """
        words = self.words(text)
        tokens: List[str] = list(words)
        for word in words:
            tokens.extend(f"cg:{g}" for g in self.char_ngrams(word))
        return tokens

    def tokenize_batch(self, texts: Sequence[str] | Iterable[str]) -> List[List[str]]:
        """Tokenize a batch of texts."""
        return [self.tokenize(t) for t in texts]
