"""Principal component analysis for embedding compression.

MeanCache compresses 768-dimensional embeddings down to 64 dimensions by
learning principal components over the users' query embeddings and attaching
them as an extra projection layer (paper §III-A4, Figure 3).  This module
implements PCA via the SVD of the centred data matrix (``full_matrices=False``
per the HPC optimization guide — we never need the full orthonormal basis).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import linalg as sla


class PCA:
    """Principal component analysis fitted by thin SVD.

    Parameters
    ----------
    n_components:
        Number of principal components to keep (the compressed dimension).
    whiten:
        If True, scale projected components to unit variance.
    """

    def __init__(self, n_components: int = 64, whiten: bool = False) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.whiten = bool(whiten)
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None  # (n_components, n_features)
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None
        self.n_features: Optional[int] = None
        self.n_samples_: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.components_ is not None

    def fit(self, X: np.ndarray) -> "PCA":
        """Learn the principal components of ``X`` (shape ``(n, d)``)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        n, d = X.shape
        if n < 2:
            raise ValueError(f"PCA requires at least 2 samples, got {n}")
        if self.n_components > min(n, d):
            raise ValueError(
                f"n_components={self.n_components} exceeds min(n_samples, n_features)={min(n, d)}"
            )
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        # Thin SVD: we only need the top singular vectors.
        _, s, vt = sla.svd(Xc, full_matrices=False)
        variance = (s**2) / max(n - 1, 1)
        total_var = variance.sum()
        k = self.n_components
        self.components_ = vt[:k].copy()
        self.explained_variance_ = variance[:k].copy()
        self.explained_variance_ratio_ = (
            variance[:k] / total_var if total_var > 0 else np.zeros(k)
        )
        self.n_features = d
        self.n_samples_ = n
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project ``X`` onto the principal components."""
        if not self.is_fitted:
            raise RuntimeError("PCA.transform called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {X.shape[1]}")
        Z = (X - self.mean_) @ self.components_.T
        if self.whiten:
            scale = np.sqrt(np.where(self.explained_variance_ > 1e-12, self.explained_variance_, 1.0))
            Z = Z / scale
        return Z

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit the components and return the projection of ``X``."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map compressed vectors back into the original space (lossy)."""
        if not self.is_fitted:
            raise RuntimeError("PCA.inverse_transform called before fit")
        Z = np.atleast_2d(np.asarray(Z, dtype=np.float64))
        if Z.shape[1] != self.n_components:
            raise ValueError(f"expected {self.n_components} components, got {Z.shape[1]}")
        if self.whiten:
            scale = np.sqrt(np.where(self.explained_variance_ > 1e-12, self.explained_variance_, 1.0))
            Z = Z * scale
        return Z @ self.components_ + self.mean_

    def reconstruction_error(self, X: np.ndarray) -> float:
        """Mean squared reconstruction error of ``X`` through the compression."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        recon = self.inverse_transform(self.transform(X))
        return float(np.mean((X - recon) ** 2))

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serializable state."""
        if not self.is_fitted:
            raise RuntimeError("cannot serialize an unfitted PCA")
        return {
            "mean": self.mean_.copy(),
            "components": self.components_.copy(),
            "explained_variance": self.explained_variance_.copy(),
            "explained_variance_ratio": self.explained_variance_ratio_.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, np.ndarray], whiten: bool = False) -> "PCA":
        """Rebuild a fitted PCA from :meth:`state_dict` output."""
        components = np.asarray(state["components"], dtype=np.float64)
        obj = cls(n_components=components.shape[0], whiten=whiten)
        obj.components_ = components
        obj.mean_ = np.asarray(state["mean"], dtype=np.float64)
        obj.explained_variance_ = np.asarray(state["explained_variance"], dtype=np.float64)
        obj.explained_variance_ratio_ = np.asarray(
            state["explained_variance_ratio"], dtype=np.float64
        )
        obj.n_features = obj.components_.shape[1]
        return obj

    def clone(self) -> "PCA":
        """Deep copy."""
        if not self.is_fitted:
            return PCA(self.n_components, self.whiten)
        return PCA.from_state_dict(self.state_dict(), whiten=self.whiten)
