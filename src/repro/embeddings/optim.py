"""Gradient-descent optimizers for the NumPy encoder.

Only the two optimizers actually needed by the reproduction are provided:
plain SGD (with optional momentum) and Adam (used by default for client-side
fine-tuning, mirroring SBERT's default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


class Optimizer:
    """Base class: holds per-parameter state and applies updates in place."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Update ``params`` in place given ``grads`` (same structure)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated state (momentum/moment estimates)."""
        raise NotImplementedError


@dataclass
class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    lr: float = 0.1
    momentum: float = 0.0
    weight_decay: float = 0.0
    _velocity: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        Optimizer.__init__(self, self.lr)
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have the same length")
        for i, (p, g) in enumerate(zip(params, grads)):
            if p.shape != g.shape:
                raise ValueError(f"shape mismatch at parameter {i}: {p.shape} vs {g.shape}")
            if self.weight_decay:
                g = g + self.weight_decay * p
            if self.momentum:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(p)
                v = self.momentum * v + g
                self._velocity[i] = v
                update = v
            else:
                update = g
            p -= self.lr * update

    def reset(self) -> None:
        self._velocity.clear()


@dataclass
class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    lr: float = 1e-2
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    _m: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _v: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _t: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        Optimizer.__init__(self, self.lr)
        if not 0.0 <= self.beta1 < 1.0 or not 0.0 <= self.beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have the same length")
        self._t += 1
        t = self._t
        for i, (p, g) in enumerate(zip(params, grads)):
            if p.shape != g.shape:
                raise ValueError(f"shape mismatch at parameter {i}: {p.shape} vs {g.shape}")
            if self.weight_decay:
                g = g + self.weight_decay * p
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(p)
                v = np.zeros_like(p)
            m = self.beta1 * m + (1.0 - self.beta1) * g
            v = self.beta2 * v + (1.0 - self.beta2) * (g * g)
            self._m[i] = m
            self._v[i] = v
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0
