"""The trainable siamese sentence encoder.

Architecture (per query)::

    text --tokenize--> tokens --hash--> x  (n_features,)
    h = tanh(x @ W1 + b1)                 (hidden_dim,)
    z = h @ W2 + b2                       (output_dim,)
    e = z / ||z||                         (unit-norm embedding)

The encoder is the NumPy stand-in for the paper's MPNet/ALBERT sentence
transformers.  It is *siamese*: the same weights encode both sides of a query
pair, and training minimises the multitask objective of
:mod:`repro.embeddings.losses`.  Parameters are exposed as a flat list of
arrays (``get_parameters`` / ``set_parameters``) in a fixed order so the
federated-learning layer can serialize, average and redistribute them.

An optional PCA compression head (``attach_pca``) projects embeddings to a
lower dimension at inference time, mirroring MeanCache's Figure 3 design where
the learned principal components become an extra layer of the deployed model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.featurizer import FeaturizerConfig, HashedFeaturizer
from repro.embeddings.losses import combined_multitask_loss
from repro.embeddings.optim import Adam, Optimizer
from repro.embeddings.pca import PCA
from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig


@dataclass(frozen=True)
class EncoderConfig:
    """Hyper-parameters of :class:`SiameseEncoder`.

    Attributes
    ----------
    n_features:
        Input width (hashed feature space size).
    hidden_dim:
        Width of the single hidden layer.
    output_dim:
        Embedding dimensionality (768 for the MPNet/ALBERT analogues,
        4096 for the Llama-2 analogue).
    seed:
        Seed for weight initialisation and the featurizer hash.
    init_scale:
        Scale multiplier on the (Xavier-style) random initialisation.  The
        "pretrained" checkpoints in the model zoo rely on the fact that a
        random projection of overlapping sparse features already preserves
        cosine similarity reasonably well.
    identity_residual:
        If True, W1 is initialised with a partial identity-like structure
        (sparse pass-through of input features), which strengthens the
        untrained ("pretrained") similarity signal.  Disabled for the
        llama2-sim configuration to reproduce its poor out-of-the-box
        semantic-matching behaviour.
    anisotropy:
        Strength of the common (anisotropic) embedding component.  Pretrained
        transformer sentence encoders are famously anisotropic: all sentence
        embeddings share a dominant direction, so cosine similarities
        concentrate in a narrow high band (duplicates ~0.8+, unrelated texts
        ~0.6+).  The encoder reproduces this by adding ``anisotropy * u`` (a
        fixed unit direction) to the normalised projection before the final
        re-normalisation.  This is what makes a *fixed* 0.7 threshold behave
        as it does for GPTCache (high recall, many false hits on lexically
        close non-duplicates).  Set to 0 to disable.
    text_noise:
        Standard deviation of a deterministic per-text noise component added
        at ``encode`` time (keyed on the text itself).  Used only by the
        ``llama2-sim`` configuration to reproduce the paper's finding that
        raw LLM embeddings are a weak sentence-similarity signal.
    dtype:
        Parameter dtype.  float64 keeps the FL averaging exact in tests.
    """

    n_features: int = 2048
    hidden_dim: int = 512
    output_dim: int = 768
    seed: int = 0
    init_scale: float = 1.0
    identity_residual: bool = True
    anisotropy: float = 1.3
    text_noise: float = 0.0
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.n_features < 2 or self.hidden_dim < 1 or self.output_dim < 1:
            raise ValueError("n_features, hidden_dim and output_dim must be positive")
        if self.anisotropy < 0:
            raise ValueError("anisotropy must be non-negative")
        if self.text_noise < 0:
            raise ValueError("text_noise must be non-negative")


class SiameseEncoder:
    """Two-layer MLP sentence encoder with L2-normalised outputs."""

    #: order of arrays returned by :meth:`get_parameters`
    PARAM_NAMES: Tuple[str, ...] = ("W1", "b1", "W2", "b2")

    def __init__(
        self,
        config: EncoderConfig | None = None,
        featurizer: HashedFeaturizer | None = None,
    ) -> None:
        self.config = config or EncoderConfig()
        if featurizer is None:
            featurizer = HashedFeaturizer(
                FeaturizerConfig(n_features=self.config.n_features, seed=self.config.seed),
                Tokenizer(TokenizerConfig()),
            )
        if featurizer.n_features != self.config.n_features:
            raise ValueError(
                "featurizer width does not match encoder config "
                f"({featurizer.n_features} != {self.config.n_features})"
            )
        self.featurizer = featurizer
        self.pca: Optional[PCA] = None
        self._init_weights()

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    def _init_weights(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        dtype = np.dtype(cfg.dtype)
        limit1 = np.sqrt(6.0 / (cfg.n_features + cfg.hidden_dim))
        limit2 = np.sqrt(6.0 / (cfg.hidden_dim + cfg.output_dim))
        self.W1 = (cfg.init_scale * rng.uniform(-limit1, limit1, (cfg.n_features, cfg.hidden_dim))).astype(dtype)
        self.b1 = np.zeros(cfg.hidden_dim, dtype=dtype)
        self.W2 = (cfg.init_scale * rng.uniform(-limit2, limit2, (cfg.hidden_dim, cfg.output_dim))).astype(dtype)
        self.b2 = np.zeros(cfg.output_dim, dtype=dtype)
        if cfg.identity_residual:
            # Strengthen the untrained similarity signal: make part of the
            # hidden layer an (overlapping) random sign pass-through of the
            # input so cosine structure of the hashed features survives the
            # projection.  This emulates "pretrained" sentence encoders that
            # are already useful before fine-tuning.
            cols = np.arange(cfg.hidden_dim)
            rows = rng.integers(0, cfg.n_features, size=cfg.hidden_dim)
            signs = rng.choice([-1.0, 1.0], size=cfg.hidden_dim)
            self.W1[rows, cols] += signs * 1.0
        # Fixed common direction for the anisotropic component (not trainable;
        # identical across FL clients because it only depends on the config).
        aniso_rng = np.random.default_rng(cfg.seed + 90_001)
        direction = aniso_rng.normal(size=cfg.output_dim)
        self._aniso_dir = (direction / np.linalg.norm(direction)).astype(dtype)

    def get_parameters(self) -> List[np.ndarray]:
        """Return copies of the trainable parameters, in a fixed order."""
        return [self.W1.copy(), self.b1.copy(), self.W2.copy(), self.b2.copy()]

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Replace the trainable parameters (shapes must match)."""
        if len(params) != 4:
            raise ValueError(f"expected 4 parameter arrays, got {len(params)}")
        expected = [self.W1.shape, self.b1.shape, self.W2.shape, self.b2.shape]
        for p, shape in zip(params, expected):
            if p.shape != shape:
                raise ValueError(f"parameter shape mismatch: {p.shape} != {shape}")
        dtype = np.dtype(self.config.dtype)
        self.W1 = np.array(params[0], dtype=dtype)
        self.b1 = np.array(params[1], dtype=dtype)
        self.W2 = np.array(params[2], dtype=dtype)
        self.b2 = np.array(params[3], dtype=dtype)

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(int(np.prod(p.shape)) for p in self.get_parameters())

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def featurize(self, texts: Sequence[str]) -> np.ndarray:
        """Hash a batch of texts into the encoder's input space."""
        return self.featurizer.transform_batch(texts)

    def forward(self, X: np.ndarray, cache: Optional[Dict[str, np.ndarray]] = None) -> np.ndarray:
        """Forward pass from feature vectors ``X`` to unit-norm embeddings.

        The pipeline is ``x -> tanh(xW1+b1) -> zW2+b2 -> normalise -> add the
        anisotropic component -> normalise``.  If ``cache`` is supplied,
        intermediates required by :meth:`backward` are stored in it.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        pre_h = X @ self.W1 + self.b1
        h = np.tanh(pre_h)
        z = h @ self.W2 + self.b2
        z_norms = np.linalg.norm(z, axis=1, keepdims=True)
        z_norms = np.where(z_norms > 1e-12, z_norms, 1.0)
        zn = z / z_norms
        alpha = self.config.anisotropy
        if alpha > 0.0:
            v = zn + alpha * self._aniso_dir
            v_norms = np.linalg.norm(v, axis=1, keepdims=True)
            v_norms = np.where(v_norms > 1e-12, v_norms, 1.0)
            e = v / v_norms
        else:
            v_norms = np.ones_like(z_norms)
            e = zn
        if cache is not None:
            cache["X"] = X
            cache["h"] = h
            cache["zn"] = zn
            cache["z_norms"] = z_norms
            cache["v_norms"] = v_norms
            cache["e"] = e
        return e

    def backward(self, cache: Dict[str, np.ndarray], grad_e: np.ndarray) -> List[np.ndarray]:
        """Backpropagate ``dL/dE`` through the network.

        Returns gradients ``[dW1, db1, dW2, db2]`` matching
        :meth:`get_parameters` order.
        """
        X, h = cache["X"], cache["h"]
        zn, z_norms, v_norms, e = cache["zn"], cache["z_norms"], cache["v_norms"], cache["e"]
        grad_e = np.asarray(grad_e, dtype=np.float64)
        alpha = self.config.anisotropy
        if alpha > 0.0:
            # e = v / ||v||, v = zn + alpha*u (u constant)
            dot_e = np.sum(grad_e * e, axis=1, keepdims=True)
            dv = (grad_e - e * dot_e) / v_norms
            dzn = dv
        else:
            dzn = grad_e
        # zn = z / ||z||
        dot_z = np.sum(dzn * zn, axis=1, keepdims=True)
        dz = (dzn - zn * dot_z) / z_norms
        dW2 = h.T @ dz
        db2 = dz.sum(axis=0)
        dh = dz @ self.W2.T
        dpre_h = dh * (1.0 - h**2)
        dW1 = X.T @ dpre_h
        db1 = dpre_h.sum(axis=0)
        return [dW1, db1, dW2, db2]

    # ------------------------------------------------------------------ #
    # Encoding API (inference)
    # ------------------------------------------------------------------ #
    def encode(self, texts: Sequence[str] | str, compress: bool = True) -> np.ndarray:
        """Encode text(s) into embeddings.

        Parameters
        ----------
        texts:
            A single string or a sequence of strings.
        compress:
            If a PCA head is attached and ``compress`` is True, return the
            compressed embeddings (re-normalised to unit norm); otherwise the
            full ``output_dim`` embeddings.

        Returns
        -------
        ``(d,)`` array for a single string, ``(n, d)`` for a sequence.
        """
        single = isinstance(texts, str)
        batch = [texts] if single else list(texts)
        X = self.featurize(batch)
        E = self.forward(X)
        if self.config.text_noise > 0.0:
            E = self._apply_text_noise(E, batch)
        if compress and self.pca is not None:
            E = self.pca.transform(E)
            norms = np.linalg.norm(E, axis=1, keepdims=True)
            E = E / np.where(norms > 1e-12, norms, 1.0)
        return E[0] if single else E

    def _apply_text_noise(self, E: np.ndarray, texts: Sequence[str]) -> np.ndarray:
        """Mix a deterministic per-text noise vector into each embedding.

        Used by the ``llama2-sim`` configuration: raw LLM hidden states carry
        a lot of text-specific information that is irrelevant to sentence
        similarity, which is modelled here as a unit-norm pseudo-random
        direction keyed on the exact text.  Paraphrases get *different* noise
        directions, which is precisely what degrades duplicate detection.
        """
        from repro.embeddings.featurizer import stable_token_hash

        sigma = self.config.text_noise
        noisy = np.array(E, dtype=np.float64, copy=True)
        for i, text in enumerate(texts):
            rng = np.random.default_rng(stable_token_hash(text, self.config.seed))
            noise = rng.normal(size=noisy.shape[1])
            noise /= np.linalg.norm(noise)
            noisy[i] = noisy[i] + sigma * noise
            norm = np.linalg.norm(noisy[i])
            if norm > 1e-12:
                noisy[i] /= norm
        return noisy

    @property
    def embedding_dim(self) -> int:
        """Dimensionality of embeddings produced by :meth:`encode`."""
        if self.pca is not None:
            return self.pca.n_components
        return self.config.output_dim

    # ------------------------------------------------------------------ #
    # PCA compression head
    # ------------------------------------------------------------------ #
    def attach_pca(self, pca: PCA) -> None:
        """Attach a fitted PCA head (Figure 3-b: inference-time compression)."""
        if not pca.is_fitted:
            raise ValueError("PCA head must be fitted before attaching")
        if pca.n_features != self.config.output_dim:
            raise ValueError(
                f"PCA was fitted on {pca.n_features}-dim embeddings, "
                f"encoder outputs {self.config.output_dim}"
            )
        self.pca = pca

    def detach_pca(self) -> None:
        """Remove the PCA compression head."""
        self.pca = None

    def fit_pca(self, texts: Sequence[str], n_components: int = 64) -> PCA:
        """Learn a PCA head from the (uncompressed) embeddings of ``texts``.

        This implements Figure 3-a: embed the corpus, learn the principal
        components, and attach them as an additional projection layer.
        """
        E = self.encode(list(texts), compress=False)
        pca = PCA(n_components=n_components)
        pca.fit(E)
        self.attach_pca(pca)
        return pca

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_on_pairs(
        self,
        pairs: Sequence[Tuple[str, str, int]],
        epochs: int = 1,
        batch_size: int = 32,
        optimizer: Optional[Optimizer] = None,
        margin: float = 1.3,
        mnr_scale: float = 20.0,
        contrastive_weight: float = 1.0,
        mnr_weight: float = 1.0,
        shuffle_seed: int = 0,
    ) -> List[float]:
        """Fine-tune the encoder on labelled query pairs.

        Parameters
        ----------
        pairs:
            Sequence of ``(query_a, query_b, label)`` with label 1 for
            duplicates and 0 for non-duplicates.
        epochs, batch_size:
            Standard minibatch training loop controls.
        optimizer:
            Defaults to :class:`repro.embeddings.optim.Adam` with lr=1e-2.

        Returns
        -------
        List of mean epoch losses (length ``epochs``).
        """
        if not pairs:
            return [0.0] * epochs
        optimizer = optimizer or Adam(lr=1e-2)
        rng = np.random.default_rng(shuffle_seed)
        texts_a = [p[0] for p in pairs]
        texts_b = [p[1] for p in pairs]
        labels = np.array([p[2] for p in pairs], dtype=np.float64)
        Xa = self.featurize(texts_a)
        Xb = self.featurize(texts_b)
        n = len(pairs)
        epoch_losses: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(n)
            losses: List[float] = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                cache_a: Dict[str, np.ndarray] = {}
                cache_b: Dict[str, np.ndarray] = {}
                Ea = self.forward(Xa[idx], cache_a)
                Eb = self.forward(Xb[idx], cache_b)
                loss, grad_a, grad_b = combined_multitask_loss(
                    Ea,
                    Eb,
                    labels[idx],
                    margin=margin,
                    mnr_scale=mnr_scale,
                    contrastive_weight=contrastive_weight,
                    mnr_weight=mnr_weight,
                )
                grads_a = self.backward(cache_a, grad_a)
                grads_b = self.backward(cache_b, grad_b)
                grads = [ga + gb for ga, gb in zip(grads_a, grads_b)]
                params = [self.W1, self.b1, self.W2, self.b2]
                optimizer.step(params, grads)
                losses.append(loss)
            epoch_losses.append(float(np.mean(losses)) if losses else 0.0)
        return epoch_losses

    # ------------------------------------------------------------------ #
    # Introspection / persistence helpers
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name -> array mapping of the parameters."""
        return dict(zip(self.PARAM_NAMES, self.get_parameters()))

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters from a :meth:`state_dict`-style mapping."""
        try:
            params = [state[name] for name in self.PARAM_NAMES]
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"missing parameter {exc} in state dict") from exc
        self.set_parameters(params)

    def clone(self) -> "SiameseEncoder":
        """Return a deep copy sharing no parameter storage with ``self``."""
        other = SiameseEncoder(self.config, self.featurizer)
        other.set_parameters(self.get_parameters())
        if self.pca is not None:
            other.pca = self.pca.clone()
        return other
