"""Sentence-embedding substrate.

This package replaces the paper's use of SBERT + HuggingFace transformer
encoders (MPNet, ALBERT, Llama-2) with a self-contained, trainable NumPy
implementation:

* :mod:`repro.embeddings.tokenizer` — word + character n-gram tokenization.
* :mod:`repro.embeddings.featurizer` — hashed sparse feature vectors.
* :mod:`repro.embeddings.model` — a siamese two-layer MLP projection encoder
  with L2-normalised outputs, trainable by backpropagation.
* :mod:`repro.embeddings.losses` — contrastive loss and multiple-negatives
  ranking loss (the two objectives used by MeanCache client training).
* :mod:`repro.embeddings.optim` — SGD and Adam optimizers.
* :mod:`repro.embeddings.zoo` — the "model zoo" mirroring the paper's three
  encoder classes (``mpnet-sim``, ``albert-sim``, ``llama2-sim``).
* :mod:`repro.embeddings.similarity` — vectorized cosine similarity and
  top-k semantic search (SBERT ``semantic_search`` replacement).
* :mod:`repro.embeddings.pca` — principal component analysis used for
  embedding compression.
"""

from repro.embeddings.featurizer import HashedFeaturizer, FeaturizerConfig
from repro.embeddings.losses import contrastive_loss, multiple_negatives_ranking_loss
from repro.embeddings.model import SiameseEncoder, EncoderConfig
from repro.embeddings.optim import SGD, Adam
from repro.embeddings.pca import PCA
from repro.embeddings.similarity import cosine_similarity, semantic_search
from repro.embeddings.tokenizer import Tokenizer, TokenizerConfig
from repro.embeddings.zoo import load_encoder, ENCODER_SPECS, EncoderSpec

__all__ = [
    "Tokenizer",
    "TokenizerConfig",
    "HashedFeaturizer",
    "FeaturizerConfig",
    "SiameseEncoder",
    "EncoderConfig",
    "contrastive_loss",
    "multiple_negatives_ranking_loss",
    "SGD",
    "Adam",
    "PCA",
    "cosine_similarity",
    "semantic_search",
    "load_encoder",
    "ENCODER_SPECS",
    "EncoderSpec",
]
