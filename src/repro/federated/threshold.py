"""Optimal cosine-similarity threshold search (paper §III-A2, §IV-F).

Given an encoder and a set of labelled query pairs, sweep the cosine
threshold τ over [0, 1], compute the decision metrics at each value, and pick
the τ maximising the Fβ score (β = 0.5, weighting precision twice as much as
recall).  Each FL client runs this on its local validation pairs; the server
averages the per-client optima into the global threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.model import SiameseEncoder
from repro.embeddings.similarity import pairwise_cosine, semantic_search
from repro.metrics.classification import confusion_matrix


@dataclass
class ThresholdSweepResult:
    """The metric curves of a threshold sweep plus the selected optimum."""

    thresholds: np.ndarray
    f_scores: np.ndarray
    f1_scores: np.ndarray
    precisions: np.ndarray
    recalls: np.ndarray
    accuracies: np.ndarray
    optimal_threshold: float
    optimal_index: int
    beta: float
    metadata: Dict[str, float] = field(default_factory=dict)

    def as_series(self) -> Dict[str, np.ndarray]:
        """All six sweep series keyed by name: the ``threshold`` grid plus
        the five metric curves (``f1``, ``f_score``, ``precision``,
        ``recall``, ``accuracy``).

        Figures 13/14/16 plot the f1/precision/recall/accuracy subset; the
        grid and the Fβ selection curve ride along so a caller can re-derive
        the optimum or plot against the x-axis without a second sweep.
        """
        return {
            "threshold": self.thresholds,
            "f1": self.f1_scores,
            "f_score": self.f_scores,
            "precision": self.precisions,
            "recall": self.recalls,
            "accuracy": self.accuracies,
        }

    def metrics_at_optimum(self) -> Dict[str, float]:
        """Headline metrics at the selected threshold."""
        i = self.optimal_index
        return {
            "threshold": float(self.thresholds[i]),
            "f_score": float(self.f_scores[i]),
            "f1": float(self.f1_scores[i]),
            "precision": float(self.precisions[i]),
            "recall": float(self.recalls[i]),
            "accuracy": float(self.accuracies[i]),
        }

    def metrics_at(self, threshold: float) -> Dict[str, float]:
        """Headline metrics at the sweep point nearest ``threshold``."""
        i = int(np.argmin(np.abs(self.thresholds - threshold)))
        return {
            "threshold": float(self.thresholds[i]),
            "f_score": float(self.f_scores[i]),
            "f1": float(self.f1_scores[i]),
            "precision": float(self.precisions[i]),
            "recall": float(self.recalls[i]),
            "accuracy": float(self.accuracies[i]),
        }


def pair_similarities(
    encoder: SiameseEncoder,
    pairs: Sequence[Tuple[str, str, int]],
    compress: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cosine similarity and label arrays for labelled query pairs."""
    if not pairs:
        return np.zeros(0), np.zeros(0, dtype=bool)
    texts_a = [p[0] for p in pairs]
    texts_b = [p[1] for p in pairs]
    labels = np.array([bool(p[2]) for p in pairs])
    emb_a = encoder.encode(texts_a, compress=compress)
    emb_b = encoder.encode(texts_b, compress=compress)
    sims = pairwise_cosine(emb_a, emb_b)
    return sims, labels


def score_sweep(
    scores: np.ndarray,
    labels: np.ndarray,
    thresholds: Optional[np.ndarray] = None,
    beta: float = 0.5,
    metadata: Optional[Dict[str, float]] = None,
) -> ThresholdSweepResult:
    """Sweep τ over precomputed (similarity, label) observations.

    The shared core of :func:`threshold_sweep`,
    :func:`cache_mode_threshold_sweep` and the online fleet adaptation loop
    (:mod:`repro.federated.online`): given one similarity score and one
    boolean duplicate label per observation, compute the decision metrics at
    every grid value and select the Fβ-optimal threshold.  Callers that
    already hold served similarities (the online loop mines them from live
    traffic) sweep without touching an encoder.
    """
    if thresholds is None:
        thresholds = np.linspace(0.0, 1.0, 101)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if thresholds.size == 0:
        raise ValueError("thresholds must be non-empty")
    if np.any(thresholds < 0) or np.any(thresholds > 1):
        raise ValueError("thresholds must lie in [0, 1]")
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=bool).reshape(-1)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must align")

    n = thresholds.size
    f_scores = np.zeros(n)
    f1_scores = np.zeros(n)
    precisions = np.zeros(n)
    recalls = np.zeros(n)
    accuracies = np.zeros(n)
    for i, tau in enumerate(thresholds):
        predicted = scores >= tau
        cm = confusion_matrix(labels, predicted)
        f_scores[i] = cm.fbeta(beta)
        f1_scores[i] = cm.f1()
        precisions[i] = cm.precision()
        recalls[i] = cm.recall()
        accuracies[i] = cm.accuracy()
    optimal_index = int(np.argmax(f_scores))
    base_metadata = {
        "n_pairs": float(scores.size),
        "positive_fraction": float(labels.mean()) if labels.size else 0.0,
    }
    base_metadata.update(metadata or {})
    return ThresholdSweepResult(
        thresholds=thresholds,
        f_scores=f_scores,
        f1_scores=f1_scores,
        precisions=precisions,
        recalls=recalls,
        accuracies=accuracies,
        optimal_threshold=float(thresholds[optimal_index]),
        optimal_index=optimal_index,
        beta=beta,
        metadata=base_metadata,
    )


def threshold_sweep(
    encoder: SiameseEncoder,
    pairs: Sequence[Tuple[str, str, int]],
    thresholds: Optional[np.ndarray] = None,
    beta: float = 0.5,
    compress: bool = True,
) -> ThresholdSweepResult:
    """Sweep τ over [0, 1] and compute decision metrics at each value.

    A pair is *predicted duplicate* when its cosine similarity is at least τ.
    """
    sims, labels = pair_similarities(encoder, pairs, compress=compress)
    return score_sweep(sims, labels, thresholds=thresholds, beta=beta)


def cache_mode_threshold_sweep(
    encoder: SiameseEncoder,
    pairs: Sequence[Tuple[str, str, int]],
    thresholds: Optional[np.ndarray] = None,
    beta: float = 0.5,
    compress: bool = True,
    extra_cache_texts: Optional[Sequence[str]] = None,
) -> ThresholdSweepResult:
    """Sweep τ against *deployed-cache* decisions rather than pairwise ones.

    The paper's clients tune τ from their cache's observed behaviour (a user
    re-querying the LLM after a bad cached answer marks a false hit), i.e.
    against the distribution of *best-match* similarities over a populated
    cache, not against isolated pairs.  This sweep reproduces that: the first
    query of every local pair is loaded into a scratch cache, the second query
    of every pair probes it, the probe's score is its maximum cosine
    similarity over the whole cache, and the ground truth is the pair's
    duplicate label.

    ``extra_cache_texts`` adds more queries to the scratch cache (e.g. the
    client's full query history), making the best-match distribution closer
    to the deployed cache's.
    """
    if not pairs:
        raise ValueError("cache-mode sweep needs at least one pair")

    cache_texts = [p[0] for p in pairs]
    if extra_cache_texts:
        cache_texts = cache_texts + [t for t in extra_cache_texts if t]
    probe_texts = [p[1] for p in pairs]
    labels = np.array([bool(p[2]) for p in pairs])
    cache_embs = np.atleast_2d(encoder.encode(cache_texts, compress=compress))
    probe_embs = np.atleast_2d(encoder.encode(probe_texts, compress=compress))
    hits = semantic_search(probe_embs, cache_embs, top_k=1)
    best = np.array([h[0].score if h else -1.0 for h in hits])
    return score_sweep(
        best,
        labels,
        thresholds=thresholds,
        beta=beta,
        metadata={"mode": 1.0},  # 1.0 marks cache-mode sweeps
    )


def find_optimal_threshold(
    encoder: SiameseEncoder,
    pairs: Sequence[Tuple[str, str, int]],
    thresholds: Optional[np.ndarray] = None,
    beta: float = 0.5,
    compress: bool = True,
    default: float = 0.7,
    mode: str = "cache",
    extra_cache_texts: Optional[Sequence[str]] = None,
) -> float:
    """Return the Fβ-optimal cosine threshold for ``encoder`` on ``pairs``.

    ``mode="cache"`` (default) tunes against deployed-cache best-match scores
    (:func:`cache_mode_threshold_sweep`); ``mode="pairwise"`` tunes against
    isolated pair similarities (:func:`threshold_sweep`, the Figures 13/14
    analysis).  Falls back to ``default`` when there are no pairs or only one
    class is present (the sweep would be degenerate) — mirroring MeanCache's
    use of the server's global threshold for data-poor clients.
    """
    if mode not in ("cache", "pairwise"):
        raise ValueError("mode must be 'cache' or 'pairwise'")
    if not pairs:
        return default
    labels = {p[2] for p in pairs}
    if len(labels) < 2:
        return default
    if mode == "cache":
        result = cache_mode_threshold_sweep(
            encoder,
            pairs,
            thresholds=thresholds,
            beta=beta,
            compress=compress,
            extra_cache_texts=extra_cache_texts,
        )
    else:
        result = threshold_sweep(
            encoder, pairs, thresholds=thresholds, beta=beta, compress=compress
        )
    return result.optimal_threshold
