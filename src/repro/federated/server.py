"""The federated-learning server.

Orchestrates the synchronous round loop of Figure 2: sample clients, ship the
global parameters and threshold, collect :class:`ClientUpdate`s, aggregate
with FedAvg, average thresholds, and (optionally) evaluate the new global
model on a held-out server-side test set of labelled pairs — producing the
per-round metric curves of Figures 11 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.model import SiameseEncoder
from repro.federated.aggregation import aggregate_thresholds, fedavg
from repro.federated.client import ClientUpdate, FLClient
from repro.federated.sampling import ClientSampler, UniformSampler
from repro.federated.threshold import pair_similarities
from repro.metrics.classification import confusion_matrix


@dataclass(frozen=True)
class ServerConfig:
    """Round-loop configuration (paper §IV-E: 50 rounds, 4 of 20 clients)."""

    n_rounds: int = 50
    clients_per_round: int = 4
    initial_threshold: float = 0.7
    evaluation_beta: float = 0.5
    aggregate_thresholds_weighted: bool = False

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if self.clients_per_round < 1:
            raise ValueError("clients_per_round must be >= 1")
        if not 0.0 <= self.initial_threshold <= 1.0:
            raise ValueError("initial_threshold must be in [0, 1]")


@dataclass
class RoundResult:
    """Outcome of one FL round."""

    round_number: int
    participating_clients: List[str]
    global_threshold: float
    mean_client_loss: float
    evaluation: Dict[str, float] = field(default_factory=dict)


class FLServer:
    """Synchronous FL server with FedAvg aggregation."""

    def __init__(
        self,
        global_encoder: SiameseEncoder,
        clients: Sequence[FLClient],
        config: Optional[ServerConfig] = None,
        sampler: Optional[ClientSampler] = None,
        test_pairs: Optional[Sequence[Tuple[str, str, int]]] = None,
        seed: int = 0,
    ) -> None:
        if not clients:
            raise ValueError("the server needs at least one client")
        self.global_encoder = global_encoder
        self.clients: Dict[str, FLClient] = {c.client_id: c for c in clients}
        if len(self.clients) != len(clients):
            raise ValueError("client ids must be unique")
        self.config = config or ServerConfig()
        self.sampler = sampler or UniformSampler(seed=seed)
        self.test_pairs = list(test_pairs) if test_pairs else []
        self.global_parameters = global_encoder.get_parameters()
        self.global_threshold = self.config.initial_threshold
        self.history: List[RoundResult] = []

    # ------------------------------------------------------------------ #
    @property
    def client_ids(self) -> List[str]:
        """All registered client ids in a stable order."""
        return sorted(self.clients)

    def evaluate_global(self, threshold: Optional[float] = None) -> Dict[str, float]:
        """Evaluate the current global model on the server-side test pairs."""
        if not self.test_pairs:
            return {}
        tau = self.global_threshold if threshold is None else threshold
        self.global_encoder.set_parameters(self.global_parameters)
        sims, labels = pair_similarities(self.global_encoder, self.test_pairs)
        cm = confusion_matrix(labels, sims >= tau)
        metrics = cm.metrics(self.config.evaluation_beta)
        metrics["threshold"] = float(tau)
        return metrics

    def run_round(self, round_number: int) -> RoundResult:
        """Execute one FL round (steps 1–4 of Figure 2)."""
        selected = self.sampler.sample(self.client_ids, self.config.clients_per_round, round_number)
        updates: List[ClientUpdate] = []
        for cid in selected:
            client = self.clients[cid]
            update = client.fit(self.global_parameters, self.global_threshold, round_number)
            updates.append(update)

        self.apply_updates(updates)
        evaluation = self.evaluate_global()
        result = RoundResult(
            round_number=round_number,
            participating_clients=selected,
            global_threshold=self.global_threshold,
            mean_client_loss=float(np.mean([u.train_loss for u in updates])) if updates else 0.0,
            evaluation=evaluation,
        )
        self.history.append(result)
        return result

    def apply_updates(self, updates: Sequence[ClientUpdate]) -> None:
        """Aggregate a set of client updates into the global state."""
        if not updates:
            raise ValueError("cannot aggregate an empty update set")
        parameter_sets = [u.parameters for u in updates]
        weights = [float(u.num_samples) for u in updates]
        self.global_parameters = fedavg(parameter_sets, weights)
        self.global_threshold = aggregate_thresholds(
            [u.local_threshold for u in updates],
            num_samples=weights,
            weighted=self.config.aggregate_thresholds_weighted,
        )
        self.global_encoder.set_parameters(self.global_parameters)

    def fit(self, n_rounds: Optional[int] = None) -> List[RoundResult]:
        """Run the full round loop and return the per-round history."""
        rounds = self.config.n_rounds if n_rounds is None else n_rounds
        for r in range(rounds):
            self.run_round(r)
        return self.history

    def training_curves(self) -> Dict[str, np.ndarray]:
        """Per-round metric series (the Figures 11/12 curves)."""
        if not self.history:
            return {}
        keys = ["f1", "f_score", "precision", "recall", "accuracy"]
        curves: Dict[str, np.ndarray] = {
            "round": np.array([r.round_number for r in self.history], dtype=np.int64),
            "threshold": np.array([r.global_threshold for r in self.history]),
            "client_loss": np.array([r.mean_client_loss for r in self.history]),
        }
        for key in keys:
            curves[key] = np.array([r.evaluation.get(key, np.nan) for r in self.history])
        return curves
