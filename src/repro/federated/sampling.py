"""Client-selection strategies for each FL round.

The paper samples 4 of 20 clients uniformly at random each round and notes
that selection may also consider battery level, bandwidth or past performance
(§III-A).  Three samplers are provided: uniform random (the default),
round-robin (deterministic coverage, useful in tests) and a resource-aware
sampler that weights clients by a supplied availability score.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class ClientSampler:
    """Interface: pick ``n`` client ids out of ``client_ids`` for a round."""

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        """Return the selected client ids for ``round_number``."""
        raise NotImplementedError

    @staticmethod
    def _check(client_ids: Sequence[str], n: int) -> int:
        if not client_ids:
            raise ValueError("no clients to sample from")
        if n < 1:
            raise ValueError("must sample at least one client")
        return min(n, len(client_ids))


class UniformSampler(ClientSampler):
    """Uniform random sampling without replacement (the paper's setting)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        k = self._check(client_ids, n)
        idx = self._rng.choice(len(client_ids), size=k, replace=False)
        return [client_ids[int(i)] for i in idx]


class RoundRobinSampler(ClientSampler):
    """Deterministic rotation through the client list."""

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        k = self._check(client_ids, n)
        start = (round_number * k) % len(client_ids)
        picked = [client_ids[(start + i) % len(client_ids)] for i in range(k)]
        return picked


class ResourceAwareSampler(ClientSampler):
    """Weighted sampling by a per-client availability score.

    Scores model battery level / bandwidth / historical reliability.
    Zero-score clients are avoided while enough positive-score clients
    exist; when a round needs more clients than have positive scores, every
    positive-score client is selected and the remainder fills uniformly
    from the zero-score pool (and when *all* scores are zero, sampling
    degrades to uniform).  A zero score is a soft preference, not an
    exclusion guarantee — model hard unavailability by omitting the client
    from ``client_ids``.
    """

    def __init__(self, scores: Dict[str, float], seed: int = 0) -> None:
        for cid, score in scores.items():
            if score < 0:
                raise ValueError(f"negative availability score for client {cid!r}")
        self.scores = dict(scores)
        self._rng = np.random.default_rng(seed)

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        k = self._check(client_ids, n)
        weights = np.array([self.scores.get(cid, 1.0) for cid in client_ids], dtype=np.float64)
        if weights.sum() <= 0:
            weights = np.ones_like(weights)
        positive = np.flatnonzero(weights > 0)
        if len(positive) >= k:
            probs = weights / weights.sum()
            idx = self._rng.choice(len(client_ids), size=k, replace=False, p=probs)
        else:
            # Fewer positive-score clients than the round needs: take every
            # positive-score client and fill the remainder uniformly from the
            # zero-score ones (np.random.choice with p= would raise here).
            zero = np.flatnonzero(weights <= 0)
            fill = self._rng.choice(zero, size=k - len(positive), replace=False)
            idx = np.concatenate([positive, fill])
        return [client_ids[int(i)] for i in idx]
