"""Client-selection strategies for each FL round.

The paper samples 4 of 20 clients uniformly at random each round and notes
that selection may also consider battery level, bandwidth or past performance
(§III-A).  Three samplers are provided: uniform random (the default),
round-robin (deterministic coverage, useful in tests) and a resource-aware
sampler that weights clients by a supplied availability score.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class ClientSampler:
    """Interface: pick ``n`` client ids out of ``client_ids`` for a round."""

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        """Return the selected client ids for ``round_number``."""
        raise NotImplementedError

    @staticmethod
    def _check(client_ids: Sequence[str], n: int) -> int:
        if not client_ids:
            raise ValueError("no clients to sample from")
        if n < 1:
            raise ValueError("must sample at least one client")
        return min(n, len(client_ids))


class UniformSampler(ClientSampler):
    """Uniform random sampling without replacement (the paper's setting)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        k = self._check(client_ids, n)
        idx = self._rng.choice(len(client_ids), size=k, replace=False)
        return [client_ids[int(i)] for i in idx]


class RoundRobinSampler(ClientSampler):
    """Deterministic rotation through the client list."""

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        k = self._check(client_ids, n)
        start = (round_number * k) % len(client_ids)
        picked = [client_ids[(start + i) % len(client_ids)] for i in range(k)]
        return picked


class ResourceAwareSampler(ClientSampler):
    """Weighted sampling by a per-client availability score.

    Scores model battery level / bandwidth / historical reliability; clients
    with zero score are never selected (unless all scores are zero, in which
    case sampling degrades to uniform).
    """

    def __init__(self, scores: Dict[str, float], seed: int = 0) -> None:
        for cid, score in scores.items():
            if score < 0:
                raise ValueError(f"negative availability score for client {cid!r}")
        self.scores = dict(scores)
        self._rng = np.random.default_rng(seed)

    def sample(self, client_ids: Sequence[str], n: int, round_number: int) -> List[str]:
        k = self._check(client_ids, n)
        weights = np.array([self.scores.get(cid, 1.0) for cid in client_ids], dtype=np.float64)
        if weights.sum() <= 0:
            weights = np.ones_like(weights)
        probs = weights / weights.sum()
        idx = self._rng.choice(len(client_ids), size=k, replace=False, p=probs)
        return [client_ids[int(i)] for i in idx]
