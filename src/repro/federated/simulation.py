"""End-to-end FL simulation harness (Flower's ``start_simulation`` analogue).

Builds the full experiment from a pair dataset: partitions data across
clients, instantiates per-client encoders, runs the round loop, and records
the global-model metric curves.  Client local training within a round can
optionally run across processes (``n_workers > 1``); parameters cross the
process boundary as flat float64 buffers (see :mod:`repro.federated.messages`),
so the parallel path exercises the same serialization discipline a real
deployment (or an MPI job) would.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.partition import partition_pairs, partition_by_topic
from repro.datasets.semantic_pairs import QueryPairDataset
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.zoo import load_encoder
from repro.federated.client import ClientConfig, ClientUpdate, FLClient
from repro.federated.sampling import ClientSampler, UniformSampler
from repro.federated.server import FLServer, RoundResult, ServerConfig


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a full FL simulation.

    Defaults mirror the paper's §IV-E setup scaled to the synthetic data:
    20 clients, 4 sampled per round, 6 local epochs, 50 rounds.
    """

    encoder_name: str = "mpnet-sim"
    n_clients: int = 20
    n_rounds: int = 50
    clients_per_round: int = 4
    local_epochs: int = 6
    batch_size: int = 128
    learning_rate: float = 1e-2
    initial_threshold: float = 0.7
    fedprox_mu: float = 0.0
    partition: str = "iid"  # "iid" or "topic"
    topic_concentration: float = 0.5
    contrastive_weight: float = 1.0
    mnr_weight: float = 1.0
    n_workers: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.partition not in ("iid", "topic"):
            raise ValueError("partition must be 'iid' or 'topic'")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")


@dataclass
class SimulationResult:
    """Everything produced by a simulation run."""

    history: List[RoundResult]
    curves: Dict[str, np.ndarray]
    final_parameters: List[np.ndarray]
    final_threshold: float
    final_metrics: Dict[str, float]
    config: SimulationConfig

    @property
    def n_rounds(self) -> int:
        """Number of rounds actually executed."""
        return len(self.history)

    def improvement(self, metric: str = "precision") -> float:
        """Final-minus-initial value of a per-round metric curve."""
        series = self.curves.get(metric)
        if series is None or len(series) == 0:
            return 0.0
        finite = series[np.isfinite(series)]
        if len(finite) < 2:
            return 0.0
        return float(finite[-1] - finite[0])


def _client_fit_worker(
    client: FLClient, parameters: List[np.ndarray], threshold: float, round_number: int
) -> ClientUpdate:
    """Module-level worker so process pools can pickle the call."""
    return client.fit(parameters, threshold, round_number)


class FLSimulation:
    """Builds clients + server from a dataset and runs the round loop."""

    def __init__(
        self,
        train_data: QueryPairDataset,
        val_data: QueryPairDataset,
        test_data: Optional[QueryPairDataset] = None,
        config: Optional[SimulationConfig] = None,
        sampler: Optional[ClientSampler] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        cfg = self.config
        self.train_data = train_data
        self.val_data = val_data
        self.test_data = test_data

        if cfg.partition == "iid":
            train_shards = partition_pairs(train_data, cfg.n_clients, seed=cfg.seed)
            val_shards = partition_pairs(val_data, cfg.n_clients, seed=cfg.seed + 1)
        else:
            train_shards = partition_by_topic(
                train_data, cfg.n_clients, concentration=cfg.topic_concentration, seed=cfg.seed
            )
            val_shards = partition_by_topic(
                val_data, cfg.n_clients, concentration=cfg.topic_concentration, seed=cfg.seed + 1
            )

        client_config = ClientConfig(
            local_epochs=cfg.local_epochs,
            batch_size=cfg.batch_size,
            learning_rate=cfg.learning_rate,
            fedprox_mu=cfg.fedprox_mu,
            contrastive_weight=cfg.contrastive_weight,
            mnr_weight=cfg.mnr_weight,
        )
        self.clients: List[FLClient] = []
        for i in range(cfg.n_clients):
            encoder = load_encoder(cfg.encoder_name)
            self.clients.append(
                FLClient(
                    client_id=f"client-{i:02d}",
                    train_data=train_shards[i],
                    val_data=val_shards[i],
                    encoder=encoder,
                    config=client_config,
                    seed=cfg.seed + 100 + i,
                )
            )

        global_encoder = load_encoder(cfg.encoder_name)
        server_config = ServerConfig(
            n_rounds=cfg.n_rounds,
            clients_per_round=cfg.clients_per_round,
            initial_threshold=cfg.initial_threshold,
        )
        test_pairs = test_data.as_tuples() if test_data is not None else None
        self.server = FLServer(
            global_encoder=global_encoder,
            clients=self.clients,
            config=server_config,
            sampler=sampler or UniformSampler(seed=cfg.seed),
            test_pairs=test_pairs,
            seed=cfg.seed,
        )

    # ------------------------------------------------------------------ #
    def _run_round_parallel(self, round_number: int, executor: ProcessPoolExecutor) -> RoundResult:
        server = self.server
        selected = server.sampler.sample(
            server.client_ids, server.config.clients_per_round, round_number
        )
        futures = [
            executor.submit(
                _client_fit_worker,
                server.clients[cid],
                server.global_parameters,
                server.global_threshold,
                round_number,
            )
            for cid in selected
        ]
        updates = [f.result() for f in futures]
        server.apply_updates(updates)
        evaluation = server.evaluate_global()
        result = RoundResult(
            round_number=round_number,
            participating_clients=selected,
            global_threshold=server.global_threshold,
            mean_client_loss=float(np.mean([u.train_loss for u in updates])) if updates else 0.0,
            evaluation=evaluation,
        )
        server.history.append(result)
        return result

    def run(self, n_rounds: Optional[int] = None) -> SimulationResult:
        """Execute the simulation and return curves + the final global state."""
        rounds = self.config.n_rounds if n_rounds is None else n_rounds
        if self.config.n_workers <= 1:
            for r in range(rounds):
                self.server.run_round(r)
        else:
            with ProcessPoolExecutor(max_workers=self.config.n_workers) as executor:
                for r in range(rounds):
                    self._run_round_parallel(r, executor)
        curves = self.server.training_curves()
        final_metrics = self.server.evaluate_global()
        return SimulationResult(
            history=list(self.server.history),
            curves=curves,
            final_parameters=[p.copy() for p in self.server.global_parameters],
            final_threshold=self.server.global_threshold,
            final_metrics=final_metrics,
            config=self.config,
        )

    def trained_encoder(self) -> SiameseEncoder:
        """Return a fresh encoder loaded with the current global parameters."""
        encoder = load_encoder(self.config.encoder_name)
        encoder.set_parameters(self.server.global_parameters)
        return encoder
