"""Parameter serialization for client/server exchange.

Model parameters travel between the FL server and clients as a single flat
``float64`` buffer plus a :class:`ParameterSpec` describing shapes — the same
buffer-oriented discipline mpi4py encourages for array communication (the
HPC guides), and what Flower does under the hood with its ``Parameters``
protobuf.  Keeping the wire format a contiguous array makes process-parallel
client execution cheap (one array per message) and makes aggregation a pure
vector operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ParameterSpec:
    """Shapes (and therefore sizes/offsets) of a parameter list."""

    shapes: Tuple[Tuple[int, ...], ...]

    @classmethod
    def from_parameters(cls, params: Sequence[np.ndarray]) -> "ParameterSpec":
        """Build a spec describing ``params``."""
        return cls(tuple(tuple(int(s) for s in p.shape) for p in params))

    @property
    def sizes(self) -> List[int]:
        """Flat size of each parameter."""
        return [int(np.prod(shape)) if shape else 1 for shape in self.shapes]

    @property
    def total_size(self) -> int:
        """Total number of scalars across all parameters."""
        return int(sum(self.sizes))

    @property
    def n_parameters(self) -> int:
        """Number of parameter arrays."""
        return len(self.shapes)


def parameters_to_buffer(params: Sequence[np.ndarray]) -> Tuple[np.ndarray, ParameterSpec]:
    """Flatten a parameter list into one contiguous float64 buffer."""
    spec = ParameterSpec.from_parameters(params)
    if spec.n_parameters == 0:
        return np.zeros(0, dtype=np.float64), spec
    buffer = np.concatenate([np.asarray(p, dtype=np.float64).ravel() for p in params])
    return buffer, spec


def buffer_to_parameters(buffer: np.ndarray, spec: ParameterSpec) -> List[np.ndarray]:
    """Reconstruct the parameter list from a flat buffer and its spec."""
    buffer = np.asarray(buffer, dtype=np.float64).ravel()
    if buffer.size != spec.total_size:
        raise ValueError(
            f"buffer has {buffer.size} scalars but spec expects {spec.total_size}"
        )
    params: List[np.ndarray] = []
    offset = 0
    for shape, size in zip(spec.shapes, spec.sizes):
        chunk = buffer[offset : offset + size]
        params.append(chunk.reshape(shape).copy())
        offset += size
    return params


def parameters_nbytes(params: Sequence[np.ndarray]) -> int:
    """Total payload size in bytes of a parameter list (float64 wire format)."""
    return int(sum(int(np.prod(p.shape)) for p in params)) * 8
