"""The federated-learning client.

Each client owns a private shard of labelled query pairs (its own querying
history).  Per round it:

1. loads the global encoder weights it received,
2. fine-tunes locally for ``local_epochs`` epochs with the multitask loss
   (optionally with a FedProx proximal term),
3. searches its validation pairs for the locally-optimal cosine threshold,
4. returns (updated weights, threshold, sample count, training loss).

Nothing but the weight arrays, the scalar threshold and aggregate counts ever
leaves the client — queries stay local, which is the privacy property the
paper's design targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.semantic_pairs import QueryPairDataset
from repro.embeddings.losses import combined_multitask_loss
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.optim import Adam
from repro.federated.aggregation import fedprox_proximal_gradient
from repro.federated.threshold import find_optimal_threshold


@dataclass(frozen=True)
class ClientConfig:
    """Local-training hyper-parameters (paper §IV-E: 6 epochs, batch 128/256)."""

    local_epochs: int = 6
    batch_size: int = 128
    learning_rate: float = 1e-2
    margin: float = 1.3
    mnr_scale: float = 20.0
    contrastive_weight: float = 1.0
    mnr_weight: float = 1.0
    fedprox_mu: float = 0.0
    threshold_beta: float = 0.5
    threshold_grid: int = 101

    def __post_init__(self) -> None:
        if self.local_epochs < 0:
            raise ValueError("local_epochs must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.fedprox_mu < 0:
            raise ValueError("fedprox_mu must be >= 0")


@dataclass
class ClientUpdate:
    """What a client sends back to the server after local training."""

    client_id: str
    parameters: List[np.ndarray]
    num_samples: int
    local_threshold: float
    train_loss: float
    metrics: Dict[str, float] = field(default_factory=dict)


class FLClient:
    """A simulated user device participating in FL training."""

    def __init__(
        self,
        client_id: str,
        train_data: QueryPairDataset,
        val_data: QueryPairDataset,
        encoder: SiameseEncoder,
        config: Optional[ClientConfig] = None,
        seed: int = 0,
    ) -> None:
        self.client_id = client_id
        self.train_data = train_data
        self.val_data = val_data
        self.encoder = encoder
        self.config = config or ClientConfig()
        self.seed = seed

    # ------------------------------------------------------------------ #
    @property
    def num_train_samples(self) -> int:
        """Number of local training pairs (the FedAvg weight ``n_k``)."""
        return len(self.train_data)

    def _local_train(self, global_parameters: Sequence[np.ndarray]) -> float:
        """Run local epochs; returns the mean loss of the final epoch."""
        cfg = self.config
        pairs = self.train_data.as_tuples()
        if not pairs or cfg.local_epochs == 0:
            return 0.0
        optimizer = Adam(lr=cfg.learning_rate)
        rng = np.random.default_rng(self.seed)
        texts_a = [p[0] for p in pairs]
        texts_b = [p[1] for p in pairs]
        labels = np.array([p[2] for p in pairs], dtype=np.float64)
        Xa = self.encoder.featurize(texts_a)
        Xb = self.encoder.featurize(texts_b)
        n = len(pairs)
        last_epoch_loss = 0.0
        global_params_f64 = [np.asarray(p, dtype=np.float64) for p in global_parameters]
        for _epoch in range(cfg.local_epochs):
            order = rng.permutation(n)
            losses: List[float] = []
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                cache_a: Dict[str, np.ndarray] = {}
                cache_b: Dict[str, np.ndarray] = {}
                Ea = self.encoder.forward(Xa[idx], cache_a)
                Eb = self.encoder.forward(Xb[idx], cache_b)
                loss, grad_a, grad_b = combined_multitask_loss(
                    Ea,
                    Eb,
                    labels[idx],
                    margin=cfg.margin,
                    mnr_scale=cfg.mnr_scale,
                    contrastive_weight=cfg.contrastive_weight,
                    mnr_weight=cfg.mnr_weight,
                )
                grads_a = self.encoder.backward(cache_a, grad_a)
                grads_b = self.encoder.backward(cache_b, grad_b)
                grads = [ga + gb for ga, gb in zip(grads_a, grads_b)]
                params = [self.encoder.W1, self.encoder.b1, self.encoder.W2, self.encoder.b2]
                if cfg.fedprox_mu > 0.0:
                    prox = fedprox_proximal_gradient(params, global_params_f64, cfg.fedprox_mu)
                    grads = [g + pg for g, pg in zip(grads, prox)]
                optimizer.step(params, grads)
                losses.append(loss)
            last_epoch_loss = float(np.mean(losses)) if losses else 0.0
        return last_epoch_loss

    def fit(
        self,
        global_parameters: Sequence[np.ndarray],
        global_threshold: float,
        round_number: int = 0,
    ) -> ClientUpdate:
        """One FL round of local work (steps 2–3 of Figure 2)."""
        self.encoder.set_parameters(list(global_parameters))
        train_loss = self._local_train(global_parameters)
        thresholds = np.linspace(0.0, 1.0, self.config.threshold_grid)
        # The threshold is tuned against the client's deployed cache
        # behaviour: validation pairs provide labelled probes, while the
        # client's full local query history (training queries) pads the
        # scratch cache so the best-match score distribution matches what the
        # real cache will see.
        history = [p.query_a for p in self.train_data.pairs]
        local_threshold = find_optimal_threshold(
            self.encoder,
            self.val_data.as_tuples(),
            thresholds=thresholds,
            beta=self.config.threshold_beta,
            default=global_threshold,
            mode="cache",
            extra_cache_texts=history,
        )
        return ClientUpdate(
            client_id=self.client_id,
            parameters=self.encoder.get_parameters(),
            num_samples=max(self.num_train_samples, 1),
            local_threshold=local_threshold,
            train_loss=train_loss,
            metrics={"round": float(round_number)},
        )

    def evaluate(
        self,
        global_parameters: Sequence[np.ndarray],
        threshold: float,
        beta: float = 0.5,
    ) -> Dict[str, float]:
        """Evaluate the global model on this client's validation pairs."""
        from repro.federated.threshold import pair_similarities
        from repro.metrics.classification import confusion_matrix

        self.encoder.set_parameters(list(global_parameters))
        pairs = self.val_data.as_tuples()
        if not pairs:
            return {"f_score": 0.0, "precision": 0.0, "recall": 0.0, "accuracy": 0.0, "n": 0.0}
        sims, labels = pair_similarities(self.encoder, pairs)
        cm = confusion_matrix(labels, sims >= threshold)
        metrics = cm.metrics(beta)
        metrics["n"] = float(len(pairs))
        return metrics
