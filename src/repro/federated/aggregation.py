"""Server-side aggregation strategies.

The paper uses FedAvg (Eq. 1): the new global model is the sample-count
weighted mean of client models.  The global cosine-similarity threshold is the
(unweighted) mean of the clients' locally-optimal thresholds (§III-A3).
FedProx is included because the paper cites it as an alternative aggregation /
local-objective scheme; our implementation provides the proximal-term gradient
helper for clients plus a plain weighted average on the server (FedProx's
server step equals FedAvg's).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def _validate_updates(
    parameter_sets: Sequence[Sequence[np.ndarray]], weights: Sequence[float]
) -> None:
    if not parameter_sets:
        raise ValueError("no client updates to aggregate")
    if len(parameter_sets) != len(weights):
        raise ValueError("one weight per client update is required")
    n_arrays = len(parameter_sets[0])
    for i, params in enumerate(parameter_sets):
        if len(params) != n_arrays:
            raise ValueError(f"client {i} returned {len(params)} arrays, expected {n_arrays}")
        for j, (p, ref) in enumerate(zip(params, parameter_sets[0])):
            if p.shape != ref.shape:
                raise ValueError(
                    f"client {i} parameter {j} has shape {p.shape}, expected {ref.shape}"
                )
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if sum(weights) <= 0:
        raise ValueError("at least one weight must be positive")


def fedavg(
    parameter_sets: Sequence[Sequence[np.ndarray]],
    num_samples: Sequence[float],
) -> List[np.ndarray]:
    """Sample-count weighted parameter averaging (McMahan et al., Eq. 1).

    Parameters
    ----------
    parameter_sets:
        One parameter list per participating client.
    num_samples:
        The ``n_k`` sample counts used as weights.
    """
    _validate_updates(parameter_sets, num_samples)
    total = float(sum(num_samples))
    fractions = [float(n) / total for n in num_samples]
    aggregated: List[np.ndarray] = []
    for j in range(len(parameter_sets[0])):
        acc = np.zeros_like(np.asarray(parameter_sets[0][j], dtype=np.float64))
        for frac, params in zip(fractions, parameter_sets):
            acc += frac * np.asarray(params[j], dtype=np.float64)
        aggregated.append(acc)
    return aggregated


def fedprox_aggregate(
    parameter_sets: Sequence[Sequence[np.ndarray]],
    num_samples: Sequence[float],
) -> List[np.ndarray]:
    """FedProx server aggregation (identical to FedAvg's weighted mean)."""
    return fedavg(parameter_sets, num_samples)


def fedprox_proximal_gradient(
    local_params: Sequence[np.ndarray],
    global_params: Sequence[np.ndarray],
    mu: float,
) -> List[np.ndarray]:
    """Gradient of the FedProx proximal term ``(mu/2) * ||w - w_global||^2``.

    Clients add this to their loss gradients during local training to keep
    local models close to the global model under heterogeneous data.
    """
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if len(local_params) != len(global_params):
        raise ValueError("parameter lists differ in length")
    grads: List[np.ndarray] = []
    for local, global_ in zip(local_params, global_params):
        if local.shape != global_.shape:
            raise ValueError(f"shape mismatch: {local.shape} vs {global_.shape}")
        grads.append(mu * (np.asarray(local, dtype=np.float64) - np.asarray(global_, dtype=np.float64)))
    return grads


def aggregate_thresholds(
    thresholds: Sequence[float],
    num_samples: Sequence[float] | None = None,
    weighted: bool = False,
) -> float:
    """Aggregate client cosine-similarity thresholds into the global threshold.

    The paper takes the plain mean (``weighted=False``); a sample-weighted
    variant is provided for the ablation benchmarks.
    """
    thresholds = [float(t) for t in thresholds]
    if not thresholds:
        raise ValueError("no thresholds to aggregate")
    for t in thresholds:
        if not 0.0 <= t <= 1.0:
            raise ValueError(f"threshold {t} outside [0, 1]")
    if weighted:
        if num_samples is None or len(num_samples) != len(thresholds):
            raise ValueError("weighted aggregation requires one sample count per threshold")
        _check_sample_counts(num_samples)
        total = float(sum(num_samples))
        return float(sum(t * n for t, n in zip(thresholds, num_samples)) / total)
    return float(np.mean(thresholds))


def _check_sample_counts(num_samples: Sequence[float]) -> None:
    """Reject negative per-client counts, not just a non-positive sum.

    A single negative weight among positive ones passes the sum check yet
    silently skews the weighted mean (and can push it outside the clients'
    threshold range), so each entry is validated individually.
    """
    for i, n in enumerate(num_samples):
        if n < 0:
            raise ValueError(f"sample count {n} at position {i} is negative")
    if float(sum(num_samples)) <= 0:
        raise ValueError("sample counts must sum to a positive value")


def weighted_metric_mean(values: Sequence[float], num_samples: Sequence[float]) -> float:
    """Sample-weighted mean of per-client evaluation metrics."""
    if len(values) != len(num_samples):
        raise ValueError("values and num_samples must align")
    _check_sample_counts(num_samples)
    total = float(sum(num_samples))
    return float(sum(v * n for v, n in zip(values, num_samples)) / total)
