"""Federated-learning substrate (Flower framework replacement).

Implements the synchronous FL protocol of the paper (§II, §III-A):

1. the server sends the global encoder weights and global cosine threshold to
   a sampled subset of clients,
2. each client fine-tunes the encoder on its local duplicate/non-duplicate
   query pairs with the multitask loss and searches for its locally-optimal
   cosine threshold,
3. clients return updated weights + threshold + sample counts,
4. the server aggregates weights with FedAvg (sample-count weighted mean) and
   thresholds with the mean, then redistributes.

Modules
-------
* :mod:`repro.federated.messages` — flat-buffer parameter (de)serialization.
* :mod:`repro.federated.aggregation` — FedAvg / FedProx-style aggregation and
  threshold aggregation.
* :mod:`repro.federated.sampling` — client-selection strategies.
* :mod:`repro.federated.threshold` — optimal-cosine-threshold search.
* :mod:`repro.federated.client` — the FL client (local training).
* :mod:`repro.federated.server` — the FL server (round orchestration).
* :mod:`repro.federated.simulation` — end-to-end simulation harness.
* :mod:`repro.federated.online` — online threshold adaptation for the
  serving fleet (mines labelled pairs from live traffic, runs rounds on the
  fleet's virtual clock, pushes personalized τ into live caches).
"""

from repro.federated.aggregation import (
    fedavg,
    fedprox_aggregate,
    aggregate_thresholds,
    weighted_metric_mean,
)
from repro.federated.client import FLClient, ClientConfig, ClientUpdate
from repro.federated.messages import parameters_to_buffer, buffer_to_parameters, ParameterSpec
from repro.federated.online import (
    MinedPair,
    OnlineAdaptationConfig,
    OnlineRound,
    OnlineThresholdAdapter,
)
from repro.federated.sampling import UniformSampler, RoundRobinSampler, ResourceAwareSampler
from repro.federated.server import FLServer, ServerConfig, RoundResult
from repro.federated.simulation import FLSimulation, SimulationConfig, SimulationResult
from repro.federated.threshold import (
    find_optimal_threshold,
    threshold_sweep,
    cache_mode_threshold_sweep,
    score_sweep,
    ThresholdSweepResult,
)

__all__ = [
    "parameters_to_buffer",
    "buffer_to_parameters",
    "ParameterSpec",
    "fedavg",
    "fedprox_aggregate",
    "aggregate_thresholds",
    "weighted_metric_mean",
    "UniformSampler",
    "RoundRobinSampler",
    "ResourceAwareSampler",
    "find_optimal_threshold",
    "threshold_sweep",
    "cache_mode_threshold_sweep",
    "score_sweep",
    "ThresholdSweepResult",
    "MinedPair",
    "OnlineAdaptationConfig",
    "OnlineRound",
    "OnlineThresholdAdapter",
    "FLClient",
    "ClientConfig",
    "ClientUpdate",
    "FLServer",
    "ServerConfig",
    "RoundResult",
    "FLSimulation",
    "SimulationConfig",
    "SimulationResult",
]
