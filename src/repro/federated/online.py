"""Online federated threshold adaptation for the serving fleet (§III-A2 live).

The offline experiments (:mod:`repro.experiments.fig11_12_fl_training`) learn
the cosine admission threshold τ from static labelled pair datasets.  This
module closes the loop for the *serving* fleet: every simulated user device
mines labelled query pairs from its own live traffic, a round driver running
on the fleet's virtual clock periodically samples clients, runs local
threshold sweeps over the mined observations, aggregates the local optima
into a global τ with :func:`~repro.federated.aggregation.aggregate_thresholds`,
and pushes a per-user *personalized* blend of the local and global optima
into each cache's live ``set_threshold`` hook — the callable the
:class:`~repro.core.pipeline.SimilarityThreshold` stage reads on every probe.

Pair mining (the client-side label source)
------------------------------------------
A device never sees other users' data; its labels come from its own cache
interactions, mirroring the paper's observation that users implicitly verify
cached answers (re-querying the LLM after a bad cached response marks a false
hit):

* **verified hits** — a served hit whose matched entry answers the same
  intent is a positive pair at its served similarity; a *false* hit (the
  user rejected the cached answer) is a negative pair at that similarity;
* **near-threshold misses** — a miss whose best candidate scored within
  ``miss_margin`` below the device's current τ is mined against that
  candidate: positive when the candidate would in fact have answered the
  probe (a duplicate the threshold wrongly rejected), negative otherwise.

In the simulation the verification signal comes from the workload's intent
oracle (the device knows its own intents), standing in for the user-feedback
channel a deployment would use (re-querying after a bad cached answer,
accepting a "did you mean" suggestion).  Unverifiable outcomes are skipped,
and follow-up probes' misses are not mined by default: their admission also
depends on context-chain verification, so a threshold-only label would
overstate what a lower τ could convert.

Each observation keeps the (probe, best-match) texts alongside the served
similarity, so a future online encoder fine-tuning loop can reuse the same
mined pairs; the threshold sweep itself runs directly on the similarities —
they were already computed while serving, so local rounds never re-encode.

Personalization
---------------
``personalization`` blends each device's own latest local optimum with the
global aggregate (``τ_user = λ·τ_local + (1-λ)·τ_global``).  Devices without
enough mined observations (cold-start, churned-in users) serve the global τ
until their history fills — mirroring MeanCache's use of the server threshold
for data-poor clients.  Caches shared by several users (a central deployment)
always receive the plain global τ.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.federated.aggregation import aggregate_thresholds
from repro.federated.sampling import ClientSampler, UniformSampler
from repro.federated.threshold import score_sweep


@dataclass(frozen=True)
class OnlineAdaptationConfig:
    """Knobs of the online adaptation loop.

    Attributes
    ----------
    round_interval_s:
        Virtual seconds between adaptation rounds (the fleet clock drives
        rounds, so replays are deterministic regardless of wall-clock speed).
    clients_per_round:
        Devices sampled per round (the paper samples 4 of 20 for offline FL).
    min_observations:
        A sampled device runs a local sweep only once it holds at least this
        many mined observations *and* both label classes; otherwise it keeps
        its previous local optimum (or the global τ when it has none).
    max_observations:
        Per-device recency window: older mined pairs age out, so adaptation
        chases drift instead of averaging over stale traffic.
    observation_ttl_s:
        Optional age limit (virtual seconds): pairs older than this are
        dropped before each local sweep.  A count window adapts at the pace
        a device accrues observations; the TTL bounds staleness uniformly in
        fleet time, which tracks sharp distribution shifts much faster.
    miss_margin:
        Misses are mined only when their best candidate scored at least
        ``τ - miss_margin`` — the near-threshold band where the admission
        decision was actually contested.
    mine_followup_misses:
        Also mine misses of conversational follow-up probes.  Off by
        default: converting those into hits needs context verification too,
        so their labels overstate the effect of lowering τ alone.
    threshold_grid:
        Number of sweep grid points over [0, 1].
    beta:
        Fβ selection weight for local sweeps (β < 1 favours precision).
    personalization:
        λ of the per-user blend ``λ·τ_local + (1-λ)·τ_global``; 0 serves the
        pure global threshold, 1 the pure local one.
    weighted:
        Weight the global aggregate by per-client observation counts
        (:func:`aggregate_thresholds` ``weighted=True``).
    initial_threshold:
        Global τ before the first round completes (the fleet's cold-start
        value; keep it equal to the caches' configured τ).
    min_threshold, max_threshold:
        Clamp on every pushed τ — a guard rail against degenerate local
        sweeps driving a device to admit everything (τ=0) or nothing (τ=1).
    seed:
        Seed of the default client sampler.
    """

    round_interval_s: float = 30.0
    clients_per_round: int = 4
    min_observations: int = 16
    max_observations: int = 512
    observation_ttl_s: Optional[float] = None
    miss_margin: float = 0.3
    mine_followup_misses: bool = False
    threshold_grid: int = 101
    beta: float = 1.0
    personalization: float = 0.5
    weighted: bool = False
    initial_threshold: float = 0.7
    min_threshold: float = 0.05
    max_threshold: float = 0.98
    seed: int = 0

    def __post_init__(self) -> None:
        if self.round_interval_s <= 0:
            raise ValueError("round_interval_s must be > 0")
        if self.clients_per_round < 1:
            raise ValueError("clients_per_round must be >= 1")
        if self.min_observations < 2:
            raise ValueError("min_observations must be >= 2 (a sweep needs both classes)")
        if self.max_observations < self.min_observations:
            raise ValueError("max_observations must be >= min_observations")
        if self.observation_ttl_s is not None and self.observation_ttl_s <= 0:
            raise ValueError("observation_ttl_s must be > 0")
        if self.miss_margin < 0:
            raise ValueError("miss_margin must be >= 0")
        if self.threshold_grid < 2:
            raise ValueError("threshold_grid must be >= 2")
        if not 0.0 <= self.personalization <= 1.0:
            raise ValueError("personalization must be in [0, 1]")
        if not 0.0 <= self.initial_threshold <= 1.0:
            raise ValueError("initial_threshold must be in [0, 1]")
        if not 0.0 <= self.min_threshold <= self.max_threshold <= 1.0:
            raise ValueError("need 0 <= min_threshold <= max_threshold <= 1")


@dataclass(frozen=True)
class MinedPair:
    """One labelled (probe, best-match) pair mined from live traffic."""

    query: str
    matched_query: Optional[str]
    similarity: float
    label: bool
    time_s: float
    source: str  # "hit" | "miss"


@dataclass
class OnlineRound:
    """Record of one adaptation round (the fleet-side Figures 11/12 analogue)."""

    round_number: int
    time_s: float
    participants: List[str]
    local_thresholds: Dict[str, float]
    global_threshold: float
    n_observations: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (benchmark trajectory payload)."""
        return {
            "round_number": self.round_number,
            "time_s": self.time_s,
            "participants": list(self.participants),
            "local_thresholds": dict(self.local_thresholds),
            "global_threshold": self.global_threshold,
            "n_observations": self.n_observations,
        }


class _DeviceState:
    """Per-user mining buffer plus the latest local sweep optimum."""

    __slots__ = ("cache", "pairs", "local_threshold", "threshold")

    def __init__(self, cache: object, max_observations: int, threshold: float) -> None:
        self.cache = cache
        self.pairs: Deque[MinedPair] = deque(maxlen=max_observations)
        self.local_threshold: Optional[float] = None  # latest sweep optimum
        self.threshold = threshold  # τ currently served by this device

    def sweepable(self, min_observations: int) -> bool:
        """Whether the mined buffer supports a non-degenerate sweep."""
        if len(self.pairs) < min_observations:
            return False
        labels = {p.label for p in self.pairs}
        return len(labels) == 2


class OnlineThresholdAdapter:
    """The fleet-side federated round driver.

    Plug an instance into :class:`~repro.serving.fleet.FleetSimulator`
    (``adaptation=``): the simulator registers each user's cache on first
    use, reports every lookup outcome through :meth:`observe`, and advances
    the virtual clock through :meth:`advance`, which runs any due rounds.
    The adapter is deliberately fleet-agnostic — any driver can feed it, and
    it only assumes caches expose ``set_threshold`` (devices without the
    hook, e.g. the keyword baseline, are observed but never pushed to).
    """

    def __init__(
        self,
        config: Optional[OnlineAdaptationConfig] = None,
        sampler: Optional[ClientSampler] = None,
    ) -> None:
        self.config = config or OnlineAdaptationConfig()
        self.sampler = sampler or UniformSampler(seed=self.config.seed)
        self.global_threshold = self.config.initial_threshold
        self.history: List[OnlineRound] = []
        self._devices: Dict[str, _DeviceState] = {}
        self._cache_user_count: Dict[int, int] = {}
        self._next_round_time = self.config.round_interval_s
        self._round_number = 0

    # ------------------------------------------------------------------ #
    # Fleet-facing surface
    # ------------------------------------------------------------------ #
    def register_user(self, user_id: str, cache: object) -> None:
        """Attach a user's cache; pushes the current τ to late joiners.

        Caches registered for more than one user are treated as shared
        (central) deployments and only ever receive the global τ.
        """
        if user_id in self._devices:
            return
        device = _DeviceState(cache, self.config.max_observations, self.global_threshold)
        self._devices[user_id] = device
        key = id(cache)
        self._cache_user_count[key] = self._cache_user_count.get(key, 0) + 1
        # A device joining mid-run (churn) starts from the fleet's current
        # global τ rather than the cache factory's cold-start default.
        self._push(user_id, device)

    def observe(
        self,
        user_id: str,
        *,
        similarity: float,
        hit: bool,
        verified: Optional[bool] = None,
        followup: bool = False,
        query: str = "",
        matched_query: Optional[str] = None,
        time_s: float = 0.0,
    ) -> None:
        """Mine one lookup outcome into the user's observation buffer.

        ``verified`` is the user-feedback signal: whether the entry this
        probe was (hit) or would have been (miss: the top retrieved
        candidate) served by actually answers the probe.  Unverifiable
        outcomes (``None``) are skipped — the loop learns only from labels
        the device can actually observe.
        """
        device = self._devices.get(user_id)
        if device is None or verified is None:
            return
        if hit:
            source = "hit"
        else:
            if similarity < device.threshold - self.config.miss_margin:
                return
            if followup and not self.config.mine_followup_misses:
                return
            source = "miss"
        label = bool(verified)
        device.pairs.append(
            MinedPair(
                query=query,
                matched_query=matched_query,
                similarity=float(similarity),
                label=label,
                time_s=float(time_s),
                source=source,
            )
        )

    def advance(self, now_s: float) -> List[OnlineRound]:
        """Run every round due at or before ``now_s`` on the virtual clock."""
        completed: List[OnlineRound] = []
        while self._next_round_time <= now_s:
            completed.append(self._run_round(self._next_round_time))
            self._next_round_time += self.config.round_interval_s
        return completed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def user_ids(self) -> List[str]:
        """Registered device ids in a stable order."""
        return sorted(self._devices)

    def threshold_for(self, user_id: str) -> float:
        """The τ currently served by ``user_id`` (global τ if unknown)."""
        device = self._devices.get(user_id)
        return device.threshold if device is not None else self.global_threshold

    def mined_pairs(self, user_id: str) -> List[MinedPair]:
        """The user's current observation buffer (oldest first)."""
        device = self._devices.get(user_id)
        return list(device.pairs) if device is not None else []

    def threshold_trajectory(self) -> Dict[str, np.ndarray]:
        """Per-round global-τ series (mirrors ``FLServer.training_curves``)."""
        if not self.history:
            return {}
        return {
            "round": np.array([r.round_number for r in self.history], dtype=np.int64),
            "time_s": np.array([r.time_s for r in self.history]),
            "threshold": np.array([r.global_threshold for r in self.history]),
        }

    # ------------------------------------------------------------------ #
    # Round internals
    # ------------------------------------------------------------------ #
    def _clamp(self, tau: float) -> float:
        return float(
            min(max(tau, self.config.min_threshold), self.config.max_threshold)
        )

    def _push(self, user_id: str, device: _DeviceState) -> None:
        """Recompute and push the user's personalized τ into its cache."""
        cfg = self.config
        if self._cache_user_count.get(id(device.cache), 0) > 1:
            tau = self.global_threshold  # shared central cache: global only
        else:
            local = (
                device.local_threshold
                if device.local_threshold is not None
                else self.global_threshold
            )
            tau = cfg.personalization * local + (1.0 - cfg.personalization) * self.global_threshold
        tau = self._clamp(tau)
        device.threshold = tau
        setter = getattr(device.cache, "set_threshold", None)
        if setter is not None:
            setter(tau)

    def _run_round(self, time_s: float) -> OnlineRound:
        """One federated round: sample → local sweeps → aggregate → push."""
        cfg = self.config
        grid = np.linspace(0.0, 1.0, cfg.threshold_grid)
        participants: List[str] = []
        if self._devices:
            participants = self.sampler.sample(
                self.user_ids, cfg.clients_per_round, self._round_number
            )
        local_thresholds: Dict[str, float] = {}
        counts: List[float] = []
        n_observations = 0
        for uid in participants:
            device = self._devices[uid]
            if cfg.observation_ttl_s is not None:
                cutoff = time_s - cfg.observation_ttl_s
                while device.pairs and device.pairs[0].time_s < cutoff:
                    device.pairs.popleft()
            n_observations += len(device.pairs)
            if not device.sweepable(cfg.min_observations):
                continue
            scores = np.array([p.similarity for p in device.pairs])
            labels = np.array([p.label for p in device.pairs])
            sweep = score_sweep(scores, labels, thresholds=grid, beta=cfg.beta)
            device.local_threshold = sweep.optimal_threshold
            local_thresholds[uid] = sweep.optimal_threshold
            counts.append(float(len(device.pairs)))
        if local_thresholds:
            self.global_threshold = self._clamp(
                aggregate_thresholds(
                    list(local_thresholds.values()),
                    num_samples=counts if cfg.weighted else None,
                    weighted=cfg.weighted,
                )
            )
        # Personalized push to every registered device, participant or not:
        # the global component moved, so every served τ may move with it.
        for uid, device in self._devices.items():
            self._push(uid, device)
        record = OnlineRound(
            round_number=self._round_number,
            time_s=float(time_s),
            participants=participants,
            local_thresholds=local_thresholds,
            global_threshold=self.global_threshold,
            n_observations=n_observations,
        )
        self.history.append(record)
        self._round_number += 1
        return record
