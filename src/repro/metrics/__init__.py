"""Evaluation metrics for semantic-cache hit/miss decisions."""

from repro.metrics.classification import (
    ConfusionMatrix,
    accuracy,
    confusion_matrix,
    evaluate_decisions,
    fbeta_score,
    precision,
    recall,
)
from repro.metrics.reporting import format_table, format_confusion_matrix
from repro.metrics.timing import LatencyHistogram, Timer, SimulatedClock

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "precision",
    "recall",
    "fbeta_score",
    "accuracy",
    "evaluate_decisions",
    "LatencyHistogram",
    "Timer",
    "SimulatedClock",
    "format_table",
    "format_confusion_matrix",
]
