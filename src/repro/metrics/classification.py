"""Cache-decision classification metrics (paper §IV-A3).

The semantic-cache decision is a binary classification per probe query:
*hit* (positive) when the cache claims a semantically-similar cached query
exists, *miss* (negative) otherwise.  Against ground truth this yields:

* **true hit (TP)** — probe duplicates a cached query and the cache hit it;
* **false hit (FP)** — the cache returned an entry for a probe with no true
  duplicate in the cache (the user receives a wrong response);
* **true miss (TN)** — probe had no duplicate and the cache missed;
* **false miss (FN)** — probe had a duplicate but the cache missed it.

The paper weights precision over recall (Fβ with β = 0.5) because a false hit
forces the user to manually re-send the query, whereas a false miss is
transparently served by the LLM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts of the four decision outcomes."""

    true_hits: int
    false_hits: int
    true_misses: int
    false_misses: int

    # Aliases matching standard terminology.
    @property
    def tp(self) -> int:
        """True positives (true hits)."""
        return self.true_hits

    @property
    def fp(self) -> int:
        """False positives (false hits)."""
        return self.false_hits

    @property
    def tn(self) -> int:
        """True negatives (true misses)."""
        return self.true_misses

    @property
    def fn(self) -> int:
        """False negatives (false misses)."""
        return self.false_misses

    @property
    def total(self) -> int:
        """Total number of decisions."""
        return self.tp + self.fp + self.tn + self.fn

    def as_array(self) -> np.ndarray:
        """2x2 array laid out as the paper's Figure 7: rows = real label (0, 1),
        columns = predicted label (0, 1)."""
        return np.array(
            [[self.tn, self.fp], [self.fn, self.tp]],
            dtype=np.int64,
        )

    def precision(self) -> float:
        """TP / (TP + FP); 0 when no positive predictions were made."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    def recall(self) -> float:
        """TP / (TP + FN); 0 when there are no positive ground-truth items."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    def accuracy(self) -> float:
        """(TP + TN) / total."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def fbeta(self, beta: float = 0.5) -> float:
        """Weighted harmonic mean of precision and recall."""
        if beta <= 0:
            raise ValueError("beta must be positive")
        p = self.precision()
        r = self.recall()
        denom = beta * beta * p + r
        if denom == 0.0:
            return 0.0
        return (1 + beta * beta) * p * r / denom

    def f1(self) -> float:
        """F1 score (β = 1)."""
        return self.fbeta(1.0)

    def false_hit_rate(self) -> float:
        """FP / (FP + TN): fraction of unique probes wrongly served from cache."""
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    def metrics(self, beta: float = 0.5) -> Dict[str, float]:
        """All headline metrics as a dict (keys match Table I rows)."""
        return {
            "f_score": self.fbeta(beta),
            "f1": self.f1(),
            "precision": self.precision(),
            "recall": self.recall(),
            "accuracy": self.accuracy(),
            "false_hits": float(self.fp),
            "false_misses": float(self.fn),
            "true_hits": float(self.tp),
            "true_misses": float(self.tn),
        }


def confusion_matrix(
    true_labels: Sequence[bool] | np.ndarray,
    predicted_labels: Sequence[bool] | np.ndarray,
) -> ConfusionMatrix:
    """Build a :class:`ConfusionMatrix` from boolean label arrays."""
    y_true = np.asarray(true_labels, dtype=bool).reshape(-1)
    y_pred = np.asarray(predicted_labels, dtype=bool).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"label arrays differ in length: {y_true.shape} vs {y_pred.shape}")
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return ConfusionMatrix(true_hits=tp, false_hits=fp, true_misses=tn, false_misses=fn)


def precision(
    true_labels: Sequence[bool] | np.ndarray,
    predicted_labels: Sequence[bool] | np.ndarray,
) -> float:
    """Precision of hit decisions."""
    return confusion_matrix(true_labels, predicted_labels).precision()


def recall(
    true_labels: Sequence[bool] | np.ndarray,
    predicted_labels: Sequence[bool] | np.ndarray,
) -> float:
    """Recall of hit decisions."""
    return confusion_matrix(true_labels, predicted_labels).recall()


def accuracy(
    true_labels: Sequence[bool] | np.ndarray,
    predicted_labels: Sequence[bool] | np.ndarray,
) -> float:
    """Accuracy of hit/miss decisions."""
    return confusion_matrix(true_labels, predicted_labels).accuracy()


def fbeta_score(
    true_labels: Sequence[bool] | np.ndarray,
    predicted_labels: Sequence[bool] | np.ndarray,
    beta: float = 0.5,
) -> float:
    """Fβ of hit decisions (β = 0.5 by default, as in the paper)."""
    return confusion_matrix(true_labels, predicted_labels).fbeta(beta)


def evaluate_decisions(
    true_labels: Sequence[bool] | np.ndarray,
    predicted_labels: Sequence[bool] | np.ndarray,
    beta: float = 0.5,
) -> Dict[str, float]:
    """Convenience wrapper returning the full metric dict."""
    return confusion_matrix(true_labels, predicted_labels).metrics(beta)
