"""Plain-text report formatting for experiment outputs.

Experiments print the same rows/series the paper reports; these helpers render
them as aligned ASCII tables so benchmark logs are readable without plotting.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.metrics.classification import ConfusionMatrix


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_confusion_matrix(cm: ConfusionMatrix, name: str = "") -> str:
    """Render a confusion matrix in the paper's Figure 7 layout."""
    header = f"Confusion matrix {name}".strip()
    arr = cm.as_array()
    lines = [
        header,
        "                 Predicted",
        "                 miss(0)  hit(1)",
        f"Real miss (0)    {arr[0, 0]:>7d}  {arr[0, 1]:>6d}",
        f"Real hit  (1)    {arr[1, 0]:>7d}  {arr[1, 1]:>6d}",
    ]
    return "\n".join(lines)


def format_metric_comparison(
    systems: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str] = ("f_score", "precision", "recall", "accuracy"),
    title: str | None = None,
) -> str:
    """Render a Table-I-style comparison: one column per system."""
    headers = ["Metric", *systems.keys()]
    rows = []
    for metric in metrics:
        row: List[object] = [metric]
        for system_metrics in systems.values():
            row.append(float(system_metrics.get(metric, float("nan"))))
        rows.append(row)
    return format_table(headers, rows, title=title)
