"""Timing utilities.

Two notions of time coexist in the reproduction:

* **Wall-clock time** (:class:`Timer`) — used for quantities the paper
  actually measures on real hardware that we *can* also measure here, such as
  embedding-computation time (Fig. 15) and semantic-search time (Fig. 10b).
* **Simulated time** (:class:`SimulatedClock`) — used for quantities that
  depend on hardware we do not have (LLM inference latency in Fig. 5); the
  latency model contributes simulated durations that are accumulated on a
  virtual clock so traces remain deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Timer:
    """A context-manager stopwatch accumulating wall-clock durations."""

    def __init__(self) -> None:
        self.durations: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        self.durations.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def last(self) -> float:
        """Most recent recorded duration (0.0 if none)."""
        return self.durations[-1] if self.durations else 0.0

    @property
    def total(self) -> float:
        """Sum of recorded durations."""
        return float(sum(self.durations))

    @property
    def mean(self) -> float:
        """Mean recorded duration (0.0 if none)."""
        return self.total / len(self.durations) if self.durations else 0.0

    def reset(self) -> None:
        """Forget all recorded durations."""
        self.durations.clear()
        self._start = None


class LatencyHistogram:
    """Percentile summary over ``perf_counter_ns`` samples.

    Collects integer nanosecond durations, optionally discards the first
    ``warmup`` recorded samples (cold caches, lazy imports, first-touch page
    faults), and summarizes the rest as p50/p95/p99/mean.  Percentiles use the
    nearest-rank method (the k-th smallest sample with
    ``k = ceil(q/100 * n)``), so every reported value is an actually observed
    latency rather than an interpolation — the convention serving dashboards
    use for tail latency.
    """

    def __init__(self, warmup: int = 0) -> None:
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.warmup = warmup
        self._samples: List[int] = []
        self._skipped = 0

    def record(self, duration_ns: int) -> None:
        """Record one duration in nanoseconds (warmup samples are dropped)."""
        if duration_ns < 0:
            raise ValueError("duration must be >= 0")
        if self._skipped < self.warmup:
            self._skipped += 1
            return
        self._samples.append(int(duration_ns))

    def time(self):
        """Context manager that records one ``perf_counter_ns`` interval."""
        return _HistogramInterval(self)

    @property
    def count(self) -> int:
        """Number of retained (post-warmup) samples."""
        return len(self._samples)

    @property
    def samples(self) -> List[int]:
        """Copy of the retained samples, in recording order."""
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile in nanoseconds (0.0 if empty)."""
        if not self._samples:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        ordered = sorted(self._samples)
        rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil(q*n/100), >= 1
        return float(ordered[min(rank, len(ordered)) - 1])

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency (the SLO gate's metric)."""
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        """Mean retained sample in nanoseconds (0.0 if empty)."""
        if not self._samples:
            return 0.0
        return float(sum(self._samples)) / len(self._samples)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Return a new histogram holding both sets of retained samples.

        Warmup trimming has already happened in each source histogram, so the
        merged histogram performs no further trimming.
        """
        merged = LatencyHistogram(warmup=0)
        merged._samples = self._samples + other._samples
        return merged

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready summary (nanosecond floats plus the sample count)."""
        return {
            "count": float(self.count),
            "p50_ns": self.p50,
            "p95_ns": self.p95,
            "p99_ns": self.p99,
            "mean_ns": self.mean,
        }


class _HistogramInterval:
    """Context manager recording one interval into a LatencyHistogram."""

    def __init__(self, hist: LatencyHistogram) -> None:
        self._hist = hist
        self._start = 0

    def __enter__(self) -> "_HistogramInterval":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._hist.record(time.perf_counter_ns() - self._start)


@dataclass
class SimulatedClock:
    """A virtual clock advanced by modelled durations."""

    now: float = 0.0
    history: List[float] = field(default_factory=list)

    def advance(self, seconds: float) -> float:
        """Advance the clock and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock by a negative duration")
        self.now += seconds
        self.history.append(seconds)
        return self.now

    def reset(self) -> None:
        """Return to t=0 and clear the history."""
        self.now = 0.0
        self.history.clear()
