"""Timing utilities.

Two notions of time coexist in the reproduction:

* **Wall-clock time** (:class:`Timer`) — used for quantities the paper
  actually measures on real hardware that we *can* also measure here, such as
  embedding-computation time (Fig. 15) and semantic-search time (Fig. 10b).
* **Simulated time** (:class:`SimulatedClock`) — used for quantities that
  depend on hardware we do not have (LLM inference latency in Fig. 5); the
  latency model contributes simulated durations that are accumulated on a
  virtual clock so traces remain deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


class Timer:
    """A context-manager stopwatch accumulating wall-clock durations."""

    def __init__(self) -> None:
        self.durations: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        self.durations.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def last(self) -> float:
        """Most recent recorded duration (0.0 if none)."""
        return self.durations[-1] if self.durations else 0.0

    @property
    def total(self) -> float:
        """Sum of recorded durations."""
        return float(sum(self.durations))

    @property
    def mean(self) -> float:
        """Mean recorded duration (0.0 if none)."""
        return self.total / len(self.durations) if self.durations else 0.0

    def reset(self) -> None:
        """Forget all recorded durations."""
        self.durations.clear()
        self._start = None


@dataclass
class SimulatedClock:
    """A virtual clock advanced by modelled durations."""

    now: float = 0.0
    history: List[float] = field(default_factory=list)

    def advance(self, seconds: float) -> float:
        """Advance the clock and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock by a negative duration")
        self.now += seconds
        self.history.append(seconds)
        return self.now

    def reset(self) -> None:
        """Return to t=0 and clear the history."""
        self.now = 0.0
        self.history.clear()
