"""Topic banks, query intents and template realisation.

A *query intent* is a (domain, action, object) triple, e.g.
``("programming", "sort", "a list in python")``.  Each intent can be realised
as many surface forms through templates and synonym substitution; two
realisations of the same intent are *duplicates* (semantically similar), while
realisations of different intents are *non-duplicates*.  Intents sharing a
domain and action but differing in object (or vice versa) are *hard
negatives*: lexically close yet semantically different, which is exactly the
regime where keyword caches and fixed-threshold semantic caches produce false
hits.

The word banks themselves live in :mod:`repro.datasets.banks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.banks import ACTION_SYNONYMS, OBJECT_SYNONYMS

# Question templates.  ``{action}`` and ``{object}`` are substituted; the
# paraphraser forces different realisations of the same intent onto different
# templates so duplicates are never exact string matches.
TEMPLATES: List[str] = [
    "How can I {action} {object}?",
    "How do I {action} {object}?",
    "What is the best way to {action} {object}?",
    "What's a good way to {action} {object}?",
    "Can you explain how to {action} {object}?",
    "Tips for how to {action} {object}",
    "I need help to {action} {object}",
    "Please show me how to {action} {object}",
    "Could you tell me how to {action} {object}?",
    "Steps to {action} {object}",
    "Best approach to {action} {object}",
    "Walk me through how to {action} {object}",
]

FILLERS: List[str] = [
    "",
    "please",
    "thanks",
    "if possible",
    "quickly",
    "step by step",
    "in simple terms",
    "with an example",
]


@dataclass(frozen=True)
class QueryIntent:
    """A canonical meaning: realisations of the same intent are duplicates."""

    domain: str
    action: str
    obj: str

    @property
    def key(self) -> str:
        """Stable string identifier of the intent."""
        return f"{self.domain}|{self.action}|{self.obj}"

    @property
    def object_key(self) -> str:
        """Stable identifier of the intent's (domain, object) pair."""
        return f"{self.domain}|{self.obj}"


class Corpus:
    """Enumeration of all intents plus deterministic realisation utilities.

    Parameters
    ----------
    seed:
        Seed for the corpus-level RNG used when sampling intents,
        realisations and negatives.
    domains:
        Optional subset of domain names to restrict the corpus to.  Used to
        build the "public pretraining" corpus for the encoder zoo
        (pretraining domains) versus the users' query distribution (all
        domains), which is what gives federated fine-tuning something real to
        learn.
    """

    def __init__(self, seed: int = 0, domains: "Sequence[str] | None" = None) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        if domains is not None:
            unknown = set(domains) - set(ACTION_SYNONYMS)
            if unknown:
                raise ValueError(f"unknown domains: {sorted(unknown)}")
            allowed = set(domains)
        else:
            allowed = set(ACTION_SYNONYMS)
        self._allowed_domains = allowed
        self._intents: List[QueryIntent] = []
        for domain, actions in ACTION_SYNONYMS.items():
            if domain not in allowed:
                continue
            objects = OBJECT_SYNONYMS.get(domain, [])
            for action in actions:
                for obj, _syns in objects:
                    self._intents.append(QueryIntent(domain, action, obj))
        if not self._intents:
            raise ValueError("corpus has no intents (empty domain selection)")
        self._intent_index = {intent.key: i for i, intent in enumerate(self._intents)}

    # ------------------------------------------------------------------ #
    @property
    def intents(self) -> List[QueryIntent]:
        """All intents in a stable order."""
        return list(self._intents)

    @property
    def domains(self) -> List[str]:
        """Domain names present in this corpus."""
        return sorted(self._allowed_domains)

    @staticmethod
    def all_domains() -> List[str]:
        """All domain names known to the word banks."""
        return sorted(ACTION_SYNONYMS)

    def __len__(self) -> int:
        return len(self._intents)

    def intents_for_domain(self, domain: str) -> List[QueryIntent]:
        """All intents belonging to ``domain``."""
        return [i for i in self._intents if i.domain == domain]

    def object_keys(self) -> List[str]:
        """All distinct (domain, object) keys in a stable order."""
        seen: Dict[str, None] = {}
        for intent in self._intents:
            seen.setdefault(intent.object_key, None)
        return list(seen)

    def intents_for_object_keys(self, object_keys: Sequence[str]) -> List[QueryIntent]:
        """All intents whose (domain, object) key is in ``object_keys``."""
        allowed = set(object_keys)
        return [i for i in self._intents if i.object_key in allowed]

    # ------------------------------------------------------------------ #
    def action_synonyms(self, intent: QueryIntent) -> List[str]:
        """Synonyms (including canonical form) for the intent's action."""
        return list(ACTION_SYNONYMS[intent.domain][intent.action])

    def object_synonyms(self, intent: QueryIntent) -> List[str]:
        """Synonyms (including canonical form) for the intent's object."""
        for obj, syns in OBJECT_SYNONYMS[intent.domain]:
            if obj == intent.obj:
                return [obj, *syns]
        raise KeyError(f"object {intent.obj!r} not found in domain {intent.domain!r}")

    def realize(
        self,
        intent: QueryIntent,
        rng: np.random.Generator | None = None,
        template_index: int | None = None,
        action_index: int | None = None,
        object_index: int | None = None,
        filler_index: int | None = None,
        object_bias: "float | None" = None,
    ) -> str:
        """Render one surface form of ``intent``.

        Any of the index arguments may be pinned for deterministic phrasing;
        unset ones are sampled from ``rng`` (or the corpus RNG).
        ``object_bias`` overrides the default canonical-object probability —
        it controls *paraphrase strength*: near 1.0 realisations share the
        canonical noun phrase (lexically strong overlap, high cosine
        similarity between re-asks); near 0.0 they use synonyms (weak
        paraphrases that score much lower).  The serving workload uses this
        as a driftable knob (paraphrase-style drift).
        """
        rng = rng or self._rng
        actions = self.action_synonyms(intent)
        objects = self.object_synonyms(intent)
        t_i = int(rng.integers(len(TEMPLATES))) if template_index is None else template_index % len(TEMPLATES)
        a_i = int(rng.integers(len(actions))) if action_index is None else action_index % len(actions)
        if object_index is None:
            # Users tend to repeat the distinctive noun phrase of a question
            # even when they rephrase the rest, so bias realisations toward
            # the canonical object wording (duplicates then frequently share
            # it, as in real duplicate-question corpora).
            bias = 0.45 if object_bias is None else object_bias
            if rng.random() < bias or len(objects) == 1:
                o_i = 0
            else:
                o_i = 1 + int(rng.integers(len(objects) - 1))
        else:
            o_i = object_index % len(objects)
        f_i = int(rng.integers(len(FILLERS))) if filler_index is None else filler_index % len(FILLERS)
        text = TEMPLATES[t_i].format(action=actions[a_i], object=objects[o_i])
        filler = FILLERS[f_i]
        if filler:
            if text.endswith("?"):
                text = text[:-1].rstrip() + ", " + filler + "?"
            else:
                text = text + ", " + filler
        return text

    # ------------------------------------------------------------------ #
    def sample_intents(self, n: int, rng: np.random.Generator | None = None) -> List[QueryIntent]:
        """Sample ``n`` distinct intents (without replacement when possible)."""
        rng = rng or self._rng
        replace = n > len(self._intents)
        idx = rng.choice(len(self._intents), size=n, replace=replace)
        return [self._intents[int(i)] for i in idx]

    def hard_negative(self, intent: QueryIntent, rng: np.random.Generator | None = None) -> QueryIntent:
        """An intent in the same domain differing in action or object."""
        rng = rng or self._rng
        candidates = [
            other
            for other in self.intents_for_domain(intent.domain)
            if other != intent and (other.action == intent.action or other.obj == intent.obj)
        ]
        if not candidates:
            candidates = [o for o in self.intents_for_domain(intent.domain) if o != intent]
        if not candidates:
            return self.easy_negative(intent, rng)
        return candidates[int(rng.integers(len(candidates)))]

    def easy_negative(self, intent: QueryIntent, rng: np.random.Generator | None = None) -> QueryIntent:
        """An intent from a different domain."""
        rng = rng or self._rng
        for _ in range(64):
            other = self._intents[int(rng.integers(len(self._intents)))]
            if other.domain != intent.domain:
                return other
        # Degenerate corpora (single domain): fall back to any other intent.
        others = [o for o in self._intents if o != intent]
        if not others:
            raise ValueError("corpus has a single intent; cannot form a negative")
        return others[int(rng.integers(len(others)))]
