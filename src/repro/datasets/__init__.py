"""Synthetic datasets for the MeanCache reproduction.

The paper evaluates on (a) the GPTCache benchmark dataset of duplicate /
non-duplicate query pairs, (b) a GPT-4-generated contextual-query dataset of
450 queries, and (c) a 20-participant ChatGPT user study.  None of those are
redistributable or reachable offline, so this package generates deterministic
synthetic equivalents:

* :mod:`repro.datasets.corpus` — topic/action/object banks, query intents and
  template realisation.
* :mod:`repro.datasets.paraphrase` — paraphrase generation for an intent.
* :mod:`repro.datasets.semantic_pairs` — labelled duplicate / non-duplicate
  query pair datasets with train/val/test splits, plus cache workloads
  (population set + probe set with a configurable duplicate ratio).
* :mod:`repro.datasets.contextual` — multi-turn conversations with standalone
  and follow-up queries for the contextual-query experiments.
* :mod:`repro.datasets.userstudy` — per-participant query logs matching the
  Figure 4 totals.
* :mod:`repro.datasets.partition` — federated (per-client) partitioning.
"""

from repro.datasets.contextual import (
    ContextualTurn,
    Conversation,
    ContextualDataset,
    generate_contextual_dataset,
)
from repro.datasets.corpus import Corpus, QueryIntent
from repro.datasets.paraphrase import Paraphraser
from repro.datasets.partition import partition_pairs, partition_iid, partition_by_topic
from repro.datasets.semantic_pairs import (
    QueryPair,
    QueryPairDataset,
    CacheWorkload,
    generate_pair_dataset,
    generate_cache_workload,
)
from repro.datasets.userstudy import UserStudyParticipant, generate_user_study

__all__ = [
    "Corpus",
    "QueryIntent",
    "Paraphraser",
    "QueryPair",
    "QueryPairDataset",
    "CacheWorkload",
    "generate_pair_dataset",
    "generate_cache_workload",
    "ContextualTurn",
    "Conversation",
    "ContextualDataset",
    "generate_contextual_dataset",
    "UserStudyParticipant",
    "generate_user_study",
    "partition_pairs",
    "partition_iid",
    "partition_by_topic",
]
