"""Contextual-query dataset (paper §II "Contextual Queries" and §IV-C).

A *contextual* (follow-up) query only has a well-defined answer relative to a
parent query: "Change the color to red" means something different after
"Draw a line plot in Python" than after "Draw a circle".  The paper evaluates
on a GPT-4-generated dataset of 450 queries; this module generates an
equivalent synthetic dataset with the same composition:

* A cache population of standalone queries and follow-up queries (each
  follow-up recorded with its context chain — the parent query).
* A probe stream containing duplicate standalone probes, duplicate contextual
  probes **whose context matches** a cached chain (true hits), and
  non-duplicate probes — including "trap" probes that are semantically similar
  to a cached follow-up but arise under a *different* context (the exact false
  hits GPTCache produces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.corpus import Corpus
from repro.datasets.paraphrase import Paraphraser

# followup key -> (templates, slot values)
FOLLOWUP_TEMPLATES: Dict[str, Tuple[List[str], List[str]]] = {
    "change_color": (
        [
            "Change the color to {slot}",
            "Make it {slot} instead",
            "Switch the color to {slot}",
            "Use {slot} for it",
            "Could you color it {slot}?",
        ],
        ["red", "blue", "green", "purple", "orange"],
    ),
    "change_language": (
        [
            "Now do the same in {slot}",
            "Convert it to {slot}",
            "Rewrite that in {slot}",
            "Show me the {slot} version",
        ],
        ["java", "javascript", "c++", "rust", "go"],
    ),
    "shorten": (
        [
            "Make it shorter",
            "Can you shorten it?",
            "Condense it a bit",
            "Trim it down please",
        ],
        [""],
    ),
    "expand": (
        [
            "Make it longer and more detailed",
            "Can you expand on that?",
            "Add more detail to it",
            "Elaborate on it further",
        ],
        [""],
    ),
    "add_example": (
        [
            "Add an example",
            "Include a concrete example",
            "Show an example too",
            "Can you give an example of that?",
        ],
        [""],
    ),
    "simplify": (
        [
            "Explain it more simply",
            "Explain that in simpler terms",
            "Simplify the explanation",
            "Put it in plain language",
        ],
        [""],
    ),
    "add_title": (
        [
            "Add a title to it",
            "Give it a title",
            "Put a heading on it",
            "Include a short title",
        ],
        [""],
    ),
    "formal_tone": (
        [
            "Make it more formal",
            "Use a more formal tone",
            "Rewrite it formally",
            "Make the tone more professional",
        ],
        [""],
    ),
    "fix_error": (
        [
            "It throws an error, can you fix it?",
            "That gives an error, fix it",
            "Fix the error it produces",
            "It fails with an error, please correct it",
        ],
        [""],
    ),
    "add_comments": (
        [
            "Add comments to it",
            "Can you comment the code?",
            "Include explanatory comments",
            "Annotate it with comments",
        ],
        [""],
    ),
    "change_size": (
        [
            "Make it {slot}",
            "Can you make it {slot}?",
            "Resize it to be {slot}",
        ],
        ["bigger", "smaller", "twice as large", "half the size"],
    ),
    "bullet_points": (
        [
            "Turn it into bullet points",
            "Format it as a bulleted list",
            "Rewrite it as bullet points",
        ],
        [""],
    ),
}


@dataclass(frozen=True)
class FollowupIntent:
    """A follow-up meaning: (template family, slot value)."""

    key: str
    slot: str

    @property
    def intent_key(self) -> str:
        """Stable identifier."""
        return f"followup|{self.key}|{self.slot}"


@dataclass(frozen=True)
class ContextualTurn:
    """One turn of a conversation: a query plus its context chain.

    ``context`` holds the texts of the parent queries (most recent last); an
    empty tuple means a standalone query.
    """

    text: str
    context: Tuple[str, ...]
    intent_key: str
    is_followup: bool

    @property
    def has_context(self) -> bool:
        """True when the turn is a follow-up with at least one parent."""
        return len(self.context) > 0


@dataclass
class Conversation:
    """An ordered list of turns forming one conversation."""

    turns: List[ContextualTurn] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.turns)


@dataclass(frozen=True)
class ContextualProbe:
    """A probe against a contextually-populated cache."""

    text: str
    context: Tuple[str, ...]
    intent_key: str
    should_hit: bool
    matching_cache_index: int
    is_followup: bool
    is_context_trap: bool = False


@dataclass
class ContextualDataset:
    """Cache population (turns) and probe stream for the contextual experiment."""

    cached_turns: List[ContextualTurn]
    probes: List[ContextualProbe]
    seed: int = 0

    @property
    def n_cached(self) -> int:
        """Number of cached turns (standalone + follow-up)."""
        return len(self.cached_turns)

    @property
    def n_probes(self) -> int:
        """Number of probes."""
        return len(self.probes)

    @property
    def true_labels(self) -> np.ndarray:
        """Boolean ground truth: True where the probe should hit."""
        return np.array([p.should_hit for p in self.probes], dtype=bool)

    @property
    def n_total_queries(self) -> int:
        """Total distinct queries in the dataset (population + probes)."""
        return self.n_cached + self.n_probes


def _realize_followup(
    intent: FollowupIntent, rng: np.random.Generator, exclude: Optional[str] = None
) -> str:
    """Render a surface form of a follow-up intent, avoiding ``exclude``."""
    templates, _slots = FOLLOWUP_TEMPLATES[intent.key]
    order = rng.permutation(len(templates))
    for idx in order:
        text = templates[int(idx)].format(slot=intent.slot)
        if text != exclude:
            return text
    return templates[int(order[0])].format(slot=intent.slot)


def _sample_followup_intent(rng: np.random.Generator) -> FollowupIntent:
    keys = sorted(FOLLOWUP_TEMPLATES)
    key = keys[int(rng.integers(len(keys)))]
    _templates, slots = FOLLOWUP_TEMPLATES[key]
    slot = slots[int(rng.integers(len(slots)))]
    return FollowupIntent(key=key, slot=slot)


def generate_contextual_dataset(
    n_standalone_cached: int = 100,
    n_contextual_cached: int = 100,
    n_duplicate_standalone_probes: int = 75,
    n_duplicate_contextual_probes: int = 75,
    n_unique_probes: int = 100,
    context_trap_fraction: float = 0.55,
    corpus: Optional[Corpus] = None,
    seed: int = 0,
) -> ContextualDataset:
    """Generate the §IV-C contextual workload.

    Defaults reproduce the paper's composition: 200 cached queries
    (100 standalone + 100 follow-ups of those standalone queries), then 250
    probes (75 duplicate standalone + 75 duplicate contextual + 100
    non-duplicate).  ``context_trap_fraction`` of the non-duplicate probes are
    follow-ups that semantically match a cached follow-up but occur under a
    different context — a context-oblivious cache false-hits on these.
    """
    if n_contextual_cached > n_standalone_cached:
        raise ValueError(
            "each cached follow-up needs a cached standalone parent: "
            f"n_contextual_cached={n_contextual_cached} > n_standalone_cached={n_standalone_cached}"
        )
    rng = np.random.default_rng(seed)
    corpus = corpus or Corpus(seed=seed)
    paraphraser = Paraphraser(corpus, seed=seed + 1)

    all_intents = corpus.intents
    rng.shuffle(all_intents)
    if len(all_intents) < n_standalone_cached + n_unique_probes:
        raise ValueError(
            "corpus too small for the requested dataset: "
            f"{len(all_intents)} intents < {n_standalone_cached + n_unique_probes} needed"
        )
    cached_intents = all_intents[:n_standalone_cached]
    holdout_intents = all_intents[n_standalone_cached:]

    cached_turns: List[ContextualTurn] = []
    # Standalone population.
    standalone_texts: List[str] = []
    for intent in cached_intents:
        text = corpus.realize(intent, rng=rng)
        standalone_texts.append(text)
        cached_turns.append(
            ContextualTurn(text=text, context=(), intent_key=intent.key, is_followup=False)
        )

    # Follow-up population: one follow-up per standalone parent (first
    # ``n_contextual_cached`` parents).
    followup_intents: List[FollowupIntent] = []
    followup_parent: List[int] = []
    for parent_idx in range(n_contextual_cached):
        f_intent = _sample_followup_intent(rng)
        followup_intents.append(f_intent)
        followup_parent.append(parent_idx)
        text = _realize_followup(f_intent, rng)
        cached_turns.append(
            ContextualTurn(
                text=text,
                context=(standalone_texts[parent_idx],),
                intent_key=f_intent.intent_key,
                is_followup=True,
            )
        )

    probes: List[ContextualProbe] = []

    # Duplicate standalone probes.
    if n_duplicate_standalone_probes:
        targets = rng.choice(
            n_standalone_cached,
            size=n_duplicate_standalone_probes,
            replace=n_duplicate_standalone_probes > n_standalone_cached,
        )
        for target in targets:
            intent = cached_intents[int(target)]
            text = corpus.realize(intent, rng=rng)
            attempts = 0
            while text == standalone_texts[int(target)] and attempts < 8:
                text = corpus.realize(intent, rng=rng)
                attempts += 1
            probes.append(
                ContextualProbe(
                    text=text,
                    context=(),
                    intent_key=intent.key,
                    should_hit=True,
                    matching_cache_index=int(target),
                    is_followup=False,
                )
            )

    # Duplicate contextual probes: a paraphrased follow-up whose context is a
    # paraphrase of the *same* parent.
    if n_duplicate_contextual_probes:
        targets = rng.choice(
            n_contextual_cached,
            size=n_duplicate_contextual_probes,
            replace=n_duplicate_contextual_probes > n_contextual_cached,
        )
        for target in targets:
            f_intent = followup_intents[int(target)]
            parent_idx = followup_parent[int(target)]
            cached_followup_text = cached_turns[n_standalone_cached + int(target)].text
            text = _realize_followup(f_intent, rng, exclude=cached_followup_text)
            parent_intent = cached_intents[parent_idx]
            context_text = corpus.realize(parent_intent, rng=rng)
            probes.append(
                ContextualProbe(
                    text=text,
                    context=(context_text,),
                    intent_key=f_intent.intent_key,
                    should_hit=True,
                    matching_cache_index=n_standalone_cached + int(target),
                    is_followup=True,
                )
            )

    # Non-duplicate probes.
    n_traps = int(round(n_unique_probes * context_trap_fraction))
    n_plain_unique = n_unique_probes - n_traps

    # (a) Context traps: reuse a cached follow-up's meaning under a context
    # whose intent is NOT in the cache, so the correct outcome is a miss.
    for _ in range(n_traps):
        target = int(rng.integers(n_contextual_cached))
        f_intent = followup_intents[target]
        text = _realize_followup(f_intent, rng)
        foreign_intent = holdout_intents[int(rng.integers(len(holdout_intents)))]
        context_text = corpus.realize(foreign_intent, rng=rng)
        probes.append(
            ContextualProbe(
                text=text,
                context=(context_text,),
                intent_key=f_intent.intent_key,
                should_hit=False,
                matching_cache_index=-1,
                is_followup=True,
                is_context_trap=True,
            )
        )

    # (b) Plain unique standalone probes from held-out intents.
    for i in range(n_plain_unique):
        intent = holdout_intents[int(rng.integers(len(holdout_intents)))]
        probes.append(
            ContextualProbe(
                text=corpus.realize(intent, rng=rng),
                context=(),
                intent_key=intent.key,
                should_hit=False,
                matching_cache_index=-1,
                is_followup=False,
            )
        )

    rng.shuffle(probes)
    return ContextualDataset(cached_turns=cached_turns, probes=probes, seed=seed)
