"""Paraphrase generation.

Duplicates in the synthetic dataset are produced by re-realising the same
:class:`~repro.datasets.corpus.QueryIntent` with a *different* template and
(usually) different synonym choices, so the duplicate pair shares meaning but
not surface form — mirroring the paper's motivating example
("How can I increase the battery life of my smartphone?" vs
"Tips for extending the duration of my phone's power source").
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.corpus import Corpus, QueryIntent, TEMPLATES


class Paraphraser:
    """Generates groups of mutually-duplicate realisations of an intent."""

    def __init__(self, corpus: Corpus, seed: int = 0) -> None:
        self.corpus = corpus
        self._rng = np.random.default_rng(seed)

    def realization_pair(
        self, intent: QueryIntent, rng: np.random.Generator | None = None
    ) -> Tuple[str, str]:
        """Return two distinct surface forms of the same intent.

        The second realisation is forced onto a different template, and the
        synonym slots are re-sampled, so the pair is never an exact string
        duplicate (exact duplicates would be trivially solvable by keyword
        caches and would not exercise semantic matching).
        """
        rng = rng or self._rng
        t1 = int(rng.integers(len(TEMPLATES)))
        offset = 1 + int(rng.integers(len(TEMPLATES) - 1))
        t2 = (t1 + offset) % len(TEMPLATES)
        q1 = self.corpus.realize(intent, rng=rng, template_index=t1)
        q2 = self.corpus.realize(intent, rng=rng, template_index=t2)
        # In the unlikely event synonym sampling still collides to an equal
        # string, nudge the second realisation's filler.
        attempts = 0
        while q2 == q1 and attempts < 8:
            q2 = self.corpus.realize(intent, rng=rng, template_index=t2, filler_index=attempts + 1)
            attempts += 1
        return q1, q2

    def paraphrase_group(
        self,
        intent: QueryIntent,
        size: int,
        rng: np.random.Generator | None = None,
    ) -> List[str]:
        """Return ``size`` mutually-duplicate (and pairwise distinct) realisations."""
        if size < 1:
            raise ValueError("size must be >= 1")
        rng = rng or self._rng
        seen: List[str] = []
        attempts = 0
        max_attempts = size * 20
        while len(seen) < size and attempts < max_attempts:
            attempts += 1
            template_index = int(rng.integers(len(TEMPLATES)))
            q = self.corpus.realize(intent, rng=rng, template_index=template_index)
            if q not in seen:
                seen.append(q)
        # If the intent has too few distinct realisations, pad by cycling
        # fillers deterministically.
        filler = 0
        while len(seen) < size:
            q = self.corpus.realize(intent, rng=rng, filler_index=filler)
            filler += 1
            if q not in seen:
                seen.append(q)
            if filler > 64:
                seen.append(q + " " + "again" * (len(seen)))
        return seen[:size]
