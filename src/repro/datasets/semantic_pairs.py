"""Labelled duplicate / non-duplicate query pair datasets and cache workloads.

Two dataset shapes are produced:

* :class:`QueryPairDataset` — (query_a, query_b, label) pairs, the shape used
  for training the embedding model and for the threshold sweeps
  (paper Figures 13, 14, 16).  Mirrors the GPTCache benchmark dataset, which
  consists of Quora-style duplicate question pairs.
* :class:`CacheWorkload` — a population set of cached queries plus a probe
  stream in which a configurable fraction are paraphrases of cached queries
  (should HIT) and the rest are queries whose intent is absent from the cache
  (should MISS).  This is the end-to-end shape used for Table I and
  Figures 5–7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.corpus import Corpus, QueryIntent
from repro.datasets.paraphrase import Paraphraser


@dataclass(frozen=True)
class QueryPair:
    """A labelled pair of queries (label 1 = duplicates, 0 = non-duplicates)."""

    query_a: str
    query_b: str
    label: int
    intent_a: str
    intent_b: str
    hard_negative: bool = False

    def as_tuple(self) -> Tuple[str, str, int]:
        """The ``(a, b, label)`` form consumed by encoder training."""
        return (self.query_a, self.query_b, self.label)


@dataclass
class QueryPairDataset:
    """A collection of labelled pairs with train/validation/test splits."""

    pairs: List[QueryPair]
    seed: int = 0

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    @property
    def labels(self) -> np.ndarray:
        """Label vector aligned with :attr:`pairs`."""
        return np.array([p.label for p in self.pairs], dtype=np.int64)

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of pairs labelled duplicate."""
        if not self.pairs:
            return 0.0
        return float(self.labels.mean())

    def as_tuples(self) -> List[Tuple[str, str, int]]:
        """All pairs in ``(a, b, label)`` form."""
        return [p.as_tuple() for p in self.pairs]

    def split(
        self, train_frac: float = 0.7, val_frac: float = 0.15, seed: Optional[int] = None
    ) -> Tuple["QueryPairDataset", "QueryPairDataset", "QueryPairDataset"]:
        """Shuffle and split into train / validation / test datasets."""
        if not 0.0 < train_frac < 1.0 or not 0.0 <= val_frac < 1.0:
            raise ValueError("fractions must lie in (0, 1)")
        if train_frac + val_frac >= 1.0:
            raise ValueError("train_frac + val_frac must be < 1 so the test split is non-empty")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        order = rng.permutation(len(self.pairs))
        n_train = int(round(train_frac * len(self.pairs)))
        n_val = int(round(val_frac * len(self.pairs)))
        train_idx = order[:n_train]
        val_idx = order[n_train : n_train + n_val]
        test_idx = order[n_train + n_val :]
        make = lambda idx: QueryPairDataset([self.pairs[i] for i in idx], seed=self.seed)
        return make(train_idx), make(val_idx), make(test_idx)

    def subsample(self, n: int, seed: Optional[int] = None) -> "QueryPairDataset":
        """Random subsample of ``n`` pairs (without replacement)."""
        if n >= len(self.pairs):
            return QueryPairDataset(list(self.pairs), seed=self.seed)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        idx = rng.choice(len(self.pairs), size=n, replace=False)
        return QueryPairDataset([self.pairs[i] for i in idx], seed=self.seed)

    def balanced(self, seed: Optional[int] = None) -> "QueryPairDataset":
        """Equal numbers of duplicate and non-duplicate pairs (for threshold sweeps)."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        pos = [p for p in self.pairs if p.label == 1]
        neg = [p for p in self.pairs if p.label == 0]
        n = min(len(pos), len(neg))
        pos_idx = rng.choice(len(pos), size=n, replace=False)
        neg_idx = rng.choice(len(neg), size=n, replace=False)
        pairs = [pos[i] for i in pos_idx] + [neg[i] for i in neg_idx]
        rng.shuffle(pairs)
        return QueryPairDataset(pairs, seed=self.seed)


def generate_pair_dataset(
    n_pairs: int = 2000,
    duplicate_fraction: float = 0.5,
    hard_negative_fraction: float = 0.5,
    corpus: Optional[Corpus] = None,
    seed: int = 0,
) -> QueryPairDataset:
    """Generate a labelled pair dataset.

    Parameters
    ----------
    n_pairs:
        Total number of pairs.
    duplicate_fraction:
        Fraction of pairs labelled 1 (duplicates / paraphrases).
    hard_negative_fraction:
        Among the negative pairs, the fraction drawn from the *same domain*
        with overlapping action or object (lexically close non-duplicates).
    corpus, seed:
        Corpus to realise from and the RNG seed.
    """
    if n_pairs < 1:
        raise ValueError("n_pairs must be >= 1")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    if not 0.0 <= hard_negative_fraction <= 1.0:
        raise ValueError("hard_negative_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    corpus = corpus or Corpus(seed=seed)
    paraphraser = Paraphraser(corpus, seed=seed + 1)

    n_dup = int(round(n_pairs * duplicate_fraction))
    n_neg = n_pairs - n_dup
    pairs: List[QueryPair] = []

    dup_intents = corpus.sample_intents(n_dup, rng) if n_dup else []
    for intent in dup_intents:
        q1, q2 = paraphraser.realization_pair(intent, rng)
        pairs.append(
            QueryPair(q1, q2, 1, intent.key, intent.key, hard_negative=False)
        )

    for _ in range(n_neg):
        intent_a = corpus.sample_intents(1, rng)[0]
        hard = bool(rng.random() < hard_negative_fraction)
        intent_b = corpus.hard_negative(intent_a, rng) if hard else corpus.easy_negative(intent_a, rng)
        q1 = corpus.realize(intent_a, rng=rng)
        q2 = corpus.realize(intent_b, rng=rng)
        pairs.append(
            QueryPair(q1, q2, 0, intent_a.key, intent_b.key, hard_negative=hard)
        )

    rng.shuffle(pairs)
    return QueryPairDataset(pairs, seed=seed)


# --------------------------------------------------------------------------- #
# Cache workloads (population + probe stream)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProbeQuery:
    """One probe in a cache workload.

    ``should_hit`` is the ground-truth label: True iff a semantically similar
    query exists in the cache population.  ``matching_cache_index`` points at
    the population entry it duplicates (or -1 for unique probes).
    """

    text: str
    should_hit: bool
    matching_cache_index: int
    intent_key: str
    hard_negative: bool = False


@dataclass
class CacheWorkload:
    """A cache population plus a labelled probe stream."""

    cached_queries: List[str]
    cached_intents: List[str]
    probes: List[ProbeQuery]
    seed: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def n_cached(self) -> int:
        """Number of queries pre-loaded into the cache."""
        return len(self.cached_queries)

    @property
    def n_probes(self) -> int:
        """Number of probe queries."""
        return len(self.probes)

    @property
    def true_labels(self) -> np.ndarray:
        """Boolean array: True where the probe should hit the cache."""
        return np.array([p.should_hit for p in self.probes], dtype=bool)

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of probes that should hit."""
        if not self.probes:
            return 0.0
        return float(self.true_labels.mean())


def generate_cache_workload(
    n_cached: int = 1000,
    n_probes: int = 1000,
    duplicate_fraction: float = 0.3,
    hard_negative_fraction: float = 0.35,
    fresh_object_holdout: float = 0.3,
    corpus: Optional[Corpus] = None,
    seed: int = 0,
) -> CacheWorkload:
    """Generate the Table I / Figures 5–7 end-to-end workload.

    ``n_cached`` queries form the cache population, drawn from intents whose
    (domain, object) topic is *not* held out.  ``n_probes`` probe queries
    follow:

    * ``duplicate_fraction`` of them are fresh paraphrases of cached queries
      (ground truth: HIT);
    * of the remaining unique probes, ``hard_negative_fraction`` are *hard
      negatives* — they share their action or object with a cached query
      without duplicating any cached intent (these are where fixed-threshold
      semantic caches produce false hits);
    * the rest are *fresh-topic* probes about held-out objects the cache has
      never seen (ground truth: MISS, and comfortably so for a well-behaved
      encoder).

    ``fresh_object_holdout`` controls what fraction of (domain, object) topics
    is reserved for fresh-topic probes.
    """
    if n_cached < 1 or n_probes < 1:
        raise ValueError("n_cached and n_probes must be >= 1")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    if not 0.0 <= hard_negative_fraction <= 1.0:
        raise ValueError("hard_negative_fraction must be in [0, 1]")
    if not 0.0 < fresh_object_holdout < 1.0:
        raise ValueError("fresh_object_holdout must be in (0, 1)")
    rng = np.random.default_rng(seed)
    corpus = corpus or Corpus(seed=seed)

    # Hold out a fraction of (domain, object) topics: fresh-topic probes come
    # only from these, so no cached entry shares their object.
    object_keys = corpus.object_keys()
    rng.shuffle(object_keys)
    n_fresh = max(1, int(round(len(object_keys) * fresh_object_holdout)))
    if n_fresh >= len(object_keys):
        n_fresh = len(object_keys) - 1
    fresh_keys = object_keys[:n_fresh]
    cacheable_keys = object_keys[n_fresh:]
    fresh_intents = corpus.intents_for_object_keys(fresh_keys)
    cacheable_intents = corpus.intents_for_object_keys(cacheable_keys)
    rng.shuffle(fresh_intents)
    rng.shuffle(cacheable_intents)

    cached_queries: List[str] = []
    cached_intent_objs: List[QueryIntent] = []
    for i in range(n_cached):
        intent = cacheable_intents[i % len(cacheable_intents)]
        cached_intent_objs.append(intent)
        cached_queries.append(corpus.realize(intent, rng=rng))
    cached_keys = {i.key for i in cached_intent_objs}

    n_dup_probes = int(round(n_probes * duplicate_fraction))
    n_unique_probes = n_probes - n_dup_probes
    probes: List[ProbeQuery] = []

    # Duplicate probes: paraphrase a cached query.
    if n_dup_probes:
        dup_targets = rng.choice(n_cached, size=n_dup_probes, replace=n_dup_probes > n_cached)
        for target in dup_targets:
            intent = cached_intent_objs[int(target)]
            text = corpus.realize(intent, rng=rng)
            attempts = 0
            while text == cached_queries[int(target)] and attempts < 8:
                text = corpus.realize(intent, rng=rng)
                attempts += 1
            probes.append(
                ProbeQuery(
                    text=text,
                    should_hit=True,
                    matching_cache_index=int(target),
                    intent_key=intent.key,
                )
            )

    # Unique probes: hard negatives of cached intents, or fresh-topic intents.
    for _ in range(n_unique_probes):
        hard = bool(rng.random() < hard_negative_fraction)
        intent = None
        if hard:
            base = cached_intent_objs[int(rng.integers(len(cached_intent_objs)))]
            for _attempt in range(16):
                candidate = corpus.hard_negative(base, rng)
                if candidate.key not in cached_keys:
                    intent = candidate
                    break
        if intent is None:
            hard = False
            for _attempt in range(64):
                candidate = fresh_intents[int(rng.integers(len(fresh_intents)))]
                if candidate.key not in cached_keys:
                    intent = candidate
                    break
        if intent is None:  # pragma: no cover - tiny corpora only
            intent = fresh_intents[0]
        probes.append(
            ProbeQuery(
                text=corpus.realize(intent, rng=rng),
                should_hit=False,
                matching_cache_index=-1,
                intent_key=intent.key,
                hard_negative=hard,
            )
        )

    rng.shuffle(probes)
    return CacheWorkload(
        cached_queries=cached_queries,
        cached_intents=[i.key for i in cached_intent_objs],
        probes=probes,
        seed=seed,
        metadata={
            "duplicate_fraction": duplicate_fraction,
            "hard_negative_fraction": hard_negative_fraction,
            "fresh_object_holdout": fresh_object_holdout,
        },
    )
