"""User-study log generator (paper §III-C, Figure 4).

The paper reports a privacy-preserving study of 20 ChatGPT users: for each
participant only the total query count and the duplicate query count were
shared (individual queries never left the participants' machines).  Figure 4
plots those two counts per participant; on average ~31% of queries duplicate
an earlier query by the same user.

This module reproduces the aggregate: the per-participant totals below are the
values read off Figure 4, and :func:`generate_user_study` synthesises a query
log per participant that matches those counts exactly (so the duplicate-rate
analysis and the figure regeneration are faithful), using the synthetic corpus
for the query texts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.corpus import Corpus
from repro.datasets.paraphrase import Paraphraser

#: (total queries, duplicate queries) per participant, as reported in Fig. 4.
FIGURE4_PARTICIPANT_COUNTS: List[Tuple[int, int]] = [
    (1571, 573),
    (457, 194),
    (428, 144),
    (180, 61),
    (2530, 798),
    (1531, 547),
    (427, 132),
    (2647, 700),
    (1480, 404),
    (119, 54),
    (3367, 1269),
    (91, 19),
    (345, 120),
    (116, 18),
    (352, 88),
    (3710, 1247),
    (242, 58),
    (466, 83),
    (104, 36),
    (6984, 2850),
]

#: Professions assigned to participants in the study write-up.
PARTICIPANT_PROFESSIONS: List[str] = [
    "professor",
    "graduate student",
    "developer",
    "graduate student",
    "developer",
    "developer",
    "professor",
    "developer",
    "graduate student",
    "professor",
    "developer",
    "professor",
    "graduate student",
    "professor",
    "graduate student",
    "developer",
    "graduate student",
    "developer",
    "professor",
    "developer",
]


@dataclass
class UserStudyParticipant:
    """One participant's (synthetic) query log and aggregate counts."""

    participant_id: int
    profession: str
    total_queries: int
    duplicate_queries: int
    queries: List[str] = field(default_factory=list)
    is_duplicate: List[bool] = field(default_factory=list)

    @property
    def duplicate_rate(self) -> float:
        """Fraction of this participant's queries that repeat an earlier one."""
        if self.total_queries == 0:
            return 0.0
        return self.duplicate_queries / self.total_queries


def figure4_counts() -> List[Tuple[int, int]]:
    """The per-participant (total, duplicate) counts reported in Figure 4."""
    return list(FIGURE4_PARTICIPANT_COUNTS)


def mean_duplicate_rate(counts: Optional[List[Tuple[int, int]]] = None) -> float:
    """Unweighted mean per-participant duplicate rate (the paper's ~31%)."""
    counts = counts if counts is not None else FIGURE4_PARTICIPANT_COUNTS
    rates = [dup / total for total, dup in counts if total > 0]
    return float(np.mean(rates)) if rates else 0.0


def generate_user_study(
    counts: Optional[List[Tuple[int, int]]] = None,
    generate_texts: bool = True,
    max_log_length: Optional[int] = None,
    corpus: Optional[Corpus] = None,
    seed: int = 0,
) -> List[UserStudyParticipant]:
    """Synthesize per-participant query logs consistent with Figure 4.

    Parameters
    ----------
    counts:
        Per-participant (total, duplicate) counts; defaults to the paper's.
    generate_texts:
        If False only the aggregate counts are filled in (fast path for the
        figure regeneration, which does not need the texts).
    max_log_length:
        Optional cap on generated log length per participant (counts are
        scaled proportionally), keeping test runtimes bounded.
    """
    counts = counts if counts is not None else FIGURE4_PARTICIPANT_COUNTS
    rng = np.random.default_rng(seed)
    corpus = corpus or Corpus(seed=seed)
    paraphraser = Paraphraser(corpus, seed=seed + 1)
    participants: List[UserStudyParticipant] = []

    for pid, (total, dup) in enumerate(counts):
        if dup > total:
            raise ValueError(f"participant {pid}: duplicates ({dup}) exceed total ({total})")
        profession = PARTICIPANT_PROFESSIONS[pid % len(PARTICIPANT_PROFESSIONS)]
        log_total, log_dup = total, dup
        if max_log_length is not None and total > max_log_length:
            scale = max_log_length / total
            log_total = max_log_length
            log_dup = int(round(dup * scale))
        participant = UserStudyParticipant(
            participant_id=pid,
            profession=profession,
            total_queries=total,
            duplicate_queries=dup,
        )
        if generate_texts:
            n_unique = log_total - log_dup
            unique_intents = corpus.sample_intents(max(n_unique, 1), rng)
            unique_texts = [corpus.realize(i, rng=rng) for i in unique_intents[:n_unique]]
            # Duplicates paraphrase earlier unique queries.
            duplicate_texts: List[str] = []
            for _ in range(log_dup):
                src = int(rng.integers(max(n_unique, 1)))
                intent = unique_intents[src % len(unique_intents)]
                duplicate_texts.append(corpus.realize(intent, rng=rng))
            # Interleave: uniques first guarantee every duplicate has an
            # earlier occurrence, then shuffle the tail to look like a log.
            queries = list(unique_texts)
            flags = [False] * len(unique_texts)
            insert_positions = rng.integers(
                low=1, high=max(len(queries), 1) + 1, size=len(duplicate_texts)
            )
            for text, pos in sorted(zip(duplicate_texts, insert_positions), key=lambda x: x[1]):
                queries.append(text)
                flags.append(True)
            participant.queries = queries
            participant.is_duplicate = flags
        participants.append(participant)
    return participants


def study_summary(participants: List[UserStudyParticipant]) -> Dict[str, float]:
    """Aggregate statistics over a set of participants."""
    totals = np.array([p.total_queries for p in participants], dtype=np.float64)
    dups = np.array([p.duplicate_queries for p in participants], dtype=np.float64)
    rates = np.divide(dups, totals, out=np.zeros_like(dups), where=totals > 0)
    return {
        "n_participants": float(len(participants)),
        "total_queries": float(totals.sum()),
        "total_duplicates": float(dups.sum()),
        "mean_duplicate_rate": float(rates.mean()) if len(rates) else 0.0,
        "median_duplicate_rate": float(np.median(rates)) if len(rates) else 0.0,
        "pooled_duplicate_rate": float(dups.sum() / totals.sum()) if totals.sum() else 0.0,
    }
