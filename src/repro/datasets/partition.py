"""Federated data partitioning.

The paper distributes the training and validation splits across 20 clients
with non-overlapping data points (§IV-A1).  Two partitioning strategies are
provided: IID random sharding (the paper's setup) and a topic-skewed non-IID
partition (used by the ablation benchmarks to probe robustness of FedAvg to
heterogeneous querying patterns, which the paper motivates but does not
ablate).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TypeVar

import numpy as np

from repro.datasets.semantic_pairs import QueryPair, QueryPairDataset

T = TypeVar("T")


def partition_iid(items: Sequence[T], n_clients: int, seed: int = 0) -> List[List[T]]:
    """Shuffle ``items`` and split them into ``n_clients`` near-equal shards."""
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    shards: List[List[T]] = [[] for _ in range(n_clients)]
    for rank, idx in enumerate(order):
        shards[rank % n_clients].append(items[int(idx)])
    return shards


def partition_pairs(
    dataset: QueryPairDataset, n_clients: int, seed: int = 0
) -> List[QueryPairDataset]:
    """IID-partition a pair dataset into per-client datasets."""
    shards = partition_iid(dataset.pairs, n_clients, seed=seed)
    return [QueryPairDataset(shard, seed=seed + i) for i, shard in enumerate(shards)]


def partition_by_topic(
    dataset: QueryPairDataset,
    n_clients: int,
    concentration: float = 0.5,
    seed: int = 0,
) -> List[QueryPairDataset]:
    """Non-IID partition: each client's data is skewed toward a few domains.

    Pairs are grouped by the domain of their first query's intent, then
    assigned to clients with a Dirichlet(concentration) prior per domain —
    the standard label-skew protocol in FL literature.  Lower concentration
    means more skew.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    rng = np.random.default_rng(seed)

    by_domain: Dict[str, List[QueryPair]] = {}
    for pair in dataset.pairs:
        domain = pair.intent_a.split("|", 1)[0]
        by_domain.setdefault(domain, []).append(pair)

    shards: List[List[QueryPair]] = [[] for _ in range(n_clients)]
    for domain, pairs in sorted(by_domain.items()):
        weights = rng.dirichlet([concentration] * n_clients)
        assignments = rng.choice(n_clients, size=len(pairs), p=weights)
        for pair, client in zip(pairs, assignments):
            shards[int(client)].append(pair)

    # Guarantee no client is empty (move one pair from the largest shard).
    for i, shard in enumerate(shards):
        if not shard:
            donor = int(np.argmax([len(s) for s in shards]))
            if shards[donor]:
                shard.append(shards[donor].pop())
    return [QueryPairDataset(shard, seed=seed + i) for i, shard in enumerate(shards)]
