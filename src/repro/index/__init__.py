"""Incremental vector-index subsystem.

The cache-side replacement for "a numpy array we vstack onto": a contiguous,
pre-normalized embedding matrix with amortized-O(1) appends, O(d) swap-delete
and one-matmul batched search — plus sublinear approximate backends (IVF
inverted lists, random-hyperplane LSH), quantized storage tiers (int8 scalar
quantization, product quantization, and their IVF-routed compositions)
behind the same :class:`VectorIndex` contract, selected by name through
:func:`make_index`.  Every backend snapshots to a crash-safe versioned
directory (JSON manifest + per-array ``.npy``, published atomically) via
``index.save(path)`` / :func:`load_index` — ``mmap=True`` restores without
copying, and :func:`append_delta` / :func:`compact_snapshot` maintain an
append-only mutation log on top.  See
``docs/architecture.md`` for the design, ``docs/api.md`` for the public
surface and ``docs/benchmarks.md`` for the measured recall/throughput/memory
trade-off.

>>> from repro.index import make_index
>>> index = make_index("flat", dim=4)
>>> a = index.add([1.0, 0.0, 0.0, 0.0])
>>> b = index.add([0.0, 1.0, 0.0, 0.0])
>>> [hit.id for hit in index.search([1.0, 0.1, 0.0, 0.0], top_k=1)[0]] == [a]
True
"""

from repro.index.base import IndexHit, VectorIndex
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFIndex
from repro.index.lsh import LSHIndex
from repro.index.quantized import PQIndex, QuantizedIndex, SQ8Index
from repro.index.registry import available_backends, make_index, register_index
from repro.index.snapshot import (
    SnapshotError,
    append_delta,
    atomic_snapshot_dir,
    compact_snapshot,
    delta_log_size,
    load_index,
    read_deltas,
    save_index,
)

__all__ = [
    "FlatIndex",
    "IVFIndex",
    "IndexHit",
    "LSHIndex",
    "PQIndex",
    "QuantizedIndex",
    "SQ8Index",
    "SnapshotError",
    "VectorIndex",
    "append_delta",
    "atomic_snapshot_dir",
    "available_backends",
    "compact_snapshot",
    "delta_log_size",
    "load_index",
    "make_index",
    "read_deltas",
    "register_index",
    "save_index",
]
