"""Incremental vector-index subsystem.

The cache-side replacement for "a numpy array we vstack onto": a contiguous,
pre-normalized embedding matrix with amortized-O(1) appends, O(d) swap-delete
and one-matmul batched search.  See ``docs/architecture.md`` for the design
and ``docs/api.md`` for the public surface.

>>> from repro.index import FlatIndex
>>> index = FlatIndex(dim=4)
>>> a = index.add([1.0, 0.0, 0.0, 0.0])
>>> b = index.add([0.0, 1.0, 0.0, 0.0])
>>> [hit.id for hit in index.search([1.0, 0.1, 0.0, 0.0], top_k=1)[0]] == [a]
True
"""

from repro.index.base import IndexHit, VectorIndex
from repro.index.flat import FlatIndex

__all__ = ["FlatIndex", "IndexHit", "VectorIndex"]
