"""Flat (exact) incremental cosine index over a contiguous float32 matrix.

The seed implementation of the cache kept embeddings in a plain ``(n, d)``
array that was re-built with ``np.vstack`` on every insert (O(n) copy per
insert, O(n²) enrolment), re-normalized in full on every lookup and compacted
with ``np.delete`` plus an O(n) row re-index on every eviction.
:class:`FlatIndex` replaces all three hot paths:

* **Amortized-O(1) appends** — rows live in a pre-allocated matrix whose
  capacity doubles when full, so an insert is a single row write.
* **Pre-normalized rows with cached norms** — vectors are normalized to unit
  length once at insert time (the original norm is kept so the raw vector can
  be reconstructed), so a lookup is one matmul with no corpus pass.
* **Swap-with-last deletion** — removing a row copies the last row into its
  slot and shrinks the logical size; no matrix copy, no re-index loop.

Scores are exact cosine similarities (this is still an exhaustive search; the
index changes the constants, not the asymptotics of one matmul).  Storage is
``float32`` by default, which halves memory and roughly doubles matmul
throughput at a ~1e-6 score tolerance versus float64 (see ``docs/api.md``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.embeddings.similarity import chunked_topk
from repro.index.base import IndexHit, VectorIndex
from repro.index.postings import ScratchBuffers

_MIN_CAPACITY = 64


def normalize_rows(vectors: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Unit-normalize rows in float64, returning (unit rows, norms).

    The one normalization rule every backend shares (flat family via
    :meth:`FlatIndex._normalize`, the quantized backends directly), so the
    epsilon and dtype policy cannot drift between storage tiers.
    """
    V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
    norms = np.linalg.norm(V, axis=1, keepdims=True)
    unit = V / np.where(norms > 1e-12, norms, 1.0)
    return unit, norms[:, 0]


class FlatIndex(VectorIndex):
    """Exact incremental cosine index (contiguous, pre-normalized storage).

    Parameters
    ----------
    dim:
        Vector dimensionality.  May be omitted; the first added vector then
        fixes it.
    dtype:
        Storage dtype of the matrix (``np.float32`` default, ``np.float64``
        for bit-exact parity with :func:`repro.embeddings.similarity.semantic_search`).
    initial_capacity:
        Rows pre-allocated before the first doubling.
    chunk_size:
        Corpus rows per matmul block during search (bounds peak memory).
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        dtype: np.dtype = np.float32,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
    ) -> None:
        if dim is not None and dim < 1:
            raise ValueError("dim must be >= 1")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._dim = dim
        self._constructor_dim = dim  # restored on clear(); None means data-driven
        self._dtype = np.dtype(dtype)
        if self._dtype.kind != "f":
            raise ValueError("dtype must be a floating-point type")
        self._initial_capacity = max(initial_capacity, 1)
        self._chunk_size = chunk_size
        self._size = 0
        self._next_id = 0
        self._matrix: Optional[np.ndarray] = None  # (capacity, dim) unit rows
        self._norms: Optional[np.ndarray] = None  # (capacity,) original L2 norms
        self._ids: Optional[np.ndarray] = None  # (capacity,) int64 entry ids
        # id -> row map, built lazily (None after an mmap-backed restore so a
        # zero-copy warm start pays no O(n) python loop up front).
        self._id_map: Optional[Dict[int, int]] = {}
        # True while storage is an adopted read-only memmap from
        # load_index(mmap=True); any mutation first materializes a copy.
        self._mmap_backed = False
        # Reused query-preparation buffers: repeat lookups against the same
        # index never re-allocate the normalized query matrices.
        self._scratch = ScratchBuffers()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def _id_to_row(self) -> Dict[int, int]:
        """The id -> storage-row map, built on first id-keyed access."""
        if self._id_map is None:
            ids = self._ids[: self._size] if self._ids is not None else ()
            self._id_map = {int(i): r for r, i in enumerate(np.asarray(ids).tolist())}
        return self._id_map

    @property
    def mmap_backed(self) -> bool:
        """True while storage is a read-only memory map (zero-copy restore)."""
        return self._mmap_backed

    def _materialize(self) -> None:
        """Replace mmap-backed storage with a private in-memory copy.

        Called before any mutation: the mapped arrays from
        ``load_index(mmap=True)`` are read-only (and shared with the
        snapshot file), so the first add/remove pays one copy and every
        later mutation is the usual in-place path.
        """
        if not self._mmap_backed:
            return
        self._matrix = np.array(self._matrix)
        self._norms = np.array(self._norms)
        self._ids = np.array(self._ids)
        self._mmap_backed = False

    def __len__(self) -> int:
        return self._size

    @property
    def dim(self) -> Optional[int]:
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the matrix."""
        return self._dtype

    @property
    def capacity(self) -> int:
        """Allocated rows (>= len(self))."""
        return 0 if self._matrix is None else int(self._matrix.shape[0])

    @property
    def ids(self) -> List[int]:
        return [] if self._ids is None else [int(i) for i in self._ids[: self._size]]

    @property
    def nbytes(self) -> int:
        """Bytes held by the *live* rows: matrix + cached norms + id column.

        Exactly ``len(self) * (dim * itemsize + itemsize + 8)`` — the norm
        column is counted once (neither omitted nor folded into the matrix
        term) and :attr:`matrix_nbytes` is always ``nbytes`` minus the norm
        and id columns; ``tests/test_index.py`` pins both identities.  The
        backing arrays are over-allocated for amortized-O(1) appends, so the
        process-level footprint is :attr:`allocated_nbytes`.
        """
        if self._matrix is None:
            return 0
        return int(
            self._matrix[: self._size].nbytes
            + self._norms[: self._size].nbytes
            + self._ids[: self._size].nbytes
        )

    @property
    def allocated_nbytes(self) -> int:
        """Bytes actually allocated (capacity rows, not just live ones)."""
        if self._matrix is None:
            return 0
        return int(self._matrix.nbytes + self._norms.nbytes + self._ids.nbytes)

    @property
    def matrix_nbytes(self) -> int:
        """Bytes of the live embedding rows alone (no norm/id bookkeeping).

        This is the quantity storage accounting should report as "embedding
        storage" (the paper's Figure 10a axis); :attr:`nbytes` additionally
        counts the cached norms and id column.
        """
        return 0 if self._matrix is None else int(self._matrix[: self._size].nbytes)

    def vectors(self) -> np.ndarray:
        """Read-only view of the live **unit-norm** rows (internal order)."""
        if self._matrix is None:
            d = self._dim or 0
            return np.zeros((0, d), dtype=self._dtype)
        view = self._matrix[: self._size]
        view.flags.writeable = False
        return view

    def __contains__(self, id: int) -> bool:
        return int(id) in self._id_to_row

    def get(self, id: int) -> np.ndarray:
        row = self._id_to_row.get(id)
        if row is None:
            raise KeyError(f"no vector with id {id}")
        return np.asarray(
            self._matrix[row], dtype=np.float64
        ) * float(self._norms[row])

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _normalize(self, vectors: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Unit-normalize rows in float64, returning (unit rows, norms)."""
        return normalize_rows(vectors)

    def _prepare_queries(self, Q: np.ndarray, prenormalized: bool) -> np.ndarray:
        """The query batch as a row-contiguous storage-dtype matrix.

        ``prenormalized=True`` is the caller's explicit assertion that the
        rows are already unit-norm: an already-contiguous matrix in the
        storage dtype passes through with **zero copies** (the returned array
        shares memory with the input), and any other layout pays exactly one
        cast into a reused scratch buffer.  The default path performs the
        usual float64 normalization, but writes both the unit rows and the
        storage-dtype cast into scratch, so repeated lookups allocate nothing
        query-shaped.  The arithmetic (same ufuncs, same order) is identical
        to :func:`normalize_rows` + ``np.ascontiguousarray`` — scores do not
        change by a single bit.
        """
        if Q.shape[1] != self._dim:
            raise ValueError(f"query dim {Q.shape[1]} != index dim {self._dim}")
        if prenormalized:
            if Q.dtype == self._dtype and Q.flags.c_contiguous:
                return Q
            out = self._scratch.get("query.cast", Q.shape, self._dtype)
            np.copyto(out, Q, casting="unsafe")
            return out
        norms = np.linalg.norm(Q, axis=1, keepdims=True)
        unit = self._scratch.get("query.unit64", Q.shape, np.float64)
        np.divide(Q, np.where(norms > 1e-12, norms, 1.0), out=unit)
        if self._dtype == np.float64:
            return unit
        out = self._scratch.get("query.cast", Q.shape, self._dtype)
        np.copyto(out, unit, casting="unsafe")
        return out

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if self._matrix is None:
            capacity = max(self._initial_capacity, needed)
            self._matrix = np.empty((capacity, self._dim), dtype=self._dtype)
            self._norms = np.empty(capacity, dtype=self._dtype)
            self._ids = np.empty(capacity, dtype=np.int64)
            return
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self._dim), dtype=self._dtype)
        grown[: self._size] = self._matrix[: self._size]
        self._matrix = grown
        grown_norms = np.empty(capacity, dtype=self._dtype)
        grown_norms[: self._size] = self._norms[: self._size]
        self._norms = grown_norms
        grown_ids = np.empty(capacity, dtype=np.int64)
        grown_ids[: self._size] = self._ids[: self._size]
        self._ids = grown_ids

    def _check_dim(self, d: int) -> None:
        if self._dim is None:
            self._dim = int(d)
        elif d != self._dim:
            raise ValueError(f"vector dim {d} does not match index dim {self._dim}")

    def add(self, vector: np.ndarray, id: Optional[int] = None) -> int:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        self._check_dim(vector.shape[0])
        if id is None:
            id = self._next_id
        id = int(id)
        if id in self._id_to_row:
            raise ValueError(f"id {id} is already in the index")
        self._next_id = max(self._next_id, id + 1)
        self._materialize()
        self._ensure_capacity(1)
        unit, norms = self._normalize(vector)
        row = self._size
        self._matrix[row] = unit[0]
        self._norms[row] = norms[0]
        self._ids[row] = id
        self._id_to_row[id] = row
        self._size += 1
        self._post_add(np.asarray([id], dtype=np.int64), row)
        return id

    def add_batch(self, vectors: np.ndarray, ids: Optional[Sequence[int]] = None) -> List[int]:
        V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if V.size == 0:
            return []
        self._check_dim(V.shape[1])
        n = V.shape[0]
        if ids is None:
            ids = list(range(self._next_id, self._next_id + n))
        else:
            ids = [int(i) for i in ids]
            if len(ids) != n:
                raise ValueError("ids must align with vectors")
            if len(set(ids)) != n:
                raise ValueError("ids must be unique")
            for i in ids:
                if i in self._id_to_row:
                    raise ValueError(f"id {i} is already in the index")
        self._materialize()
        self._ensure_capacity(n)
        unit, norms = self._normalize(V)
        start = self._size
        self._matrix[start : start + n] = unit
        self._norms[start : start + n] = norms
        self._ids[start : start + n] = ids
        for offset, i in enumerate(ids):
            self._id_to_row[i] = start + offset
        self._size += n
        self._next_id = max(self._next_id, max(ids) + 1)
        self._post_add(np.asarray(ids, dtype=np.int64), start)
        return list(ids)

    def remove(self, id: int) -> None:
        id = int(id)
        if id not in self._id_to_row:
            raise KeyError(f"no vector with id {id}")
        self._materialize()
        row = self._id_to_row.pop(id)
        last = self._size - 1
        moved_id: Optional[int] = None
        if row != last:
            # Swap-with-last: O(d) instead of an O(n·d) matrix compaction.
            self._matrix[row] = self._matrix[last]
            self._norms[row] = self._norms[last]
            moved_id = int(self._ids[last])
            self._ids[row] = moved_id
            self._id_to_row[moved_id] = row
        self._size -= 1
        self._post_remove(id, row, moved_id)

    def rebuild(self, vectors: np.ndarray, ids: Sequence[int]) -> None:
        ids = [int(i) for i in ids]
        V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if not ids:
            # np.atleast_2d turns an empty 1-D input into shape (1, 0), so
            # handle "rebuild to empty" before the alignment check.
            if V.size != 0:
                raise ValueError("ids must align with vectors")
            self.clear(reset_ids=False)
            return
        if V.shape[0] != len(ids):
            raise ValueError("ids must align with vectors")
        if self._constructor_dim is not None and V.shape[1] != self._constructor_dim:
            raise ValueError(
                f"vector dim {V.shape[1]} does not match index dim "
                f"{self._constructor_dim}"
            )
        self.clear(reset_ids=False)
        self._dim = int(V.shape[1])
        self.add_batch(V, ids=ids)

    def clear(self, reset_ids: bool = True) -> None:
        self._size = 0
        self._matrix = None
        self._norms = None
        self._ids = None
        self._id_map = {}
        self._mmap_backed = False
        self._scratch.clear()
        # A data-driven dim unpins so the next add may re-fix it (e.g. the
        # cache is cleared and re-populated after a PCA head changed the
        # embedding dimensionality); an explicit constructor dim stays.
        self._dim = self._constructor_dim
        if reset_ids:
            self._next_id = 0
        self._post_clear()

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    # Approximate backends (repro.index.ivf / repro.index.lsh) keep routing
    # structures — inverted lists, hash buckets — alongside the flat row
    # storage.  These hooks fire after every structural mutation so a
    # subclass can keep those structures consistent without re-implementing
    # the storage layer.  The base implementations are no-ops.

    def _post_add(self, ids: np.ndarray, start_row: int) -> None:
        """Called after ``len(ids)`` rows were written at ``start_row``."""

    def _post_remove(self, id: int, row: int, moved_id: Optional[int]) -> None:
        """Called after ``id`` was swap-deleted from ``row``.

        ``moved_id`` is the id of the former last row that now occupies
        ``row`` (``None`` when the victim itself was last).
        """

    def _post_clear(self) -> None:
        """Called after the index was emptied (clear / rebuild)."""

    def _post_restore(self) -> None:
        """Called after a snapshot reinstated the flat storage.

        Subclasses rebuild whatever routing structures derive
        deterministically from the stored rows (LSH re-hashes its tables
        here); structures that do not (IVF's trained centroids) are restored
        from their own snapshot arrays instead.
        """

    # ------------------------------------------------------------------ #
    # Snapshot protocol (see repro.index.snapshot)
    # ------------------------------------------------------------------ #
    snapshot_backend = "flat"

    def _snapshot_params(self) -> Dict[str, object]:
        return {
            "dim": self._constructor_dim,
            "dtype": self._dtype.name,
            "initial_capacity": self._initial_capacity,
            "chunk_size": self._chunk_size,
        }

    def _snapshot_state(self) -> Dict[str, object]:
        return {"dim": self._dim, "next_id": self._next_id}

    def _snapshot_arrays(self) -> Dict[str, np.ndarray]:
        n = self._size
        d = self._dim or 0
        if self._matrix is None:
            return {
                "matrix": np.zeros((0, d), dtype=self._dtype),
                "norms": np.zeros(0, dtype=self._dtype),
                "ids": np.zeros(0, dtype=np.int64),
            }
        return {
            "matrix": self._matrix[:n],
            "norms": self._norms[:n],
            "ids": self._ids[:n],
        }

    def _restore(
        self, state: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> None:
        self.clear(reset_ids=True)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        n = int(ids.shape[0])
        if state["dim"] is not None:
            self._dim = int(state["dim"])
        if n:
            matrix = arrays["matrix"]
            norms = arrays["norms"]
            if (
                isinstance(matrix, np.memmap)
                and matrix.dtype == self._dtype
                and np.asarray(norms).dtype == self._dtype
            ):
                # Zero-copy warm start: adopt the mapped snapshot arrays as
                # the storage (capacity == size; the id map builds lazily and
                # the first mutation materializes a private copy).
                self._matrix = matrix
                self._norms = np.asarray(norms)
                self._ids = ids
                self._id_map = None
                self._mmap_backed = True
            else:
                self._ensure_capacity(n)
                # Snapshots store the storage dtype, so these copies are
                # bit-exact round-trips.
                self._matrix[:n] = np.asarray(matrix, dtype=self._dtype)
                self._norms[:n] = np.asarray(norms, dtype=self._dtype)
                self._ids[:n] = ids
                self._id_map = {int(i): r for r, i in enumerate(ids.tolist())}
            self._size = n
        self._next_id = int(state["next_id"])
        self._post_restore()

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(
        self,
        queries: np.ndarray,
        top_k: int = 5,
        score_threshold: Optional[float] = None,
        *,
        prenormalized: bool = False,
    ) -> List[List[IndexHit]]:
        """Batched top-k cosine search over the live rows.

        Accepts a single ``(d,)`` query or a ``(q, d)`` batch; returns one
        list of :class:`IndexHit` (sorted by descending score) per query.
        The corpus side of the matmul is the pre-normalized matrix, so no
        per-call normalization happens.  ``prenormalized=True`` additionally
        skips the query-side normalization (the caller asserts the rows are
        already unit-norm; an already-contiguous storage-dtype matrix is then
        used without a single copy).
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if prenormalized:
            Q = np.atleast_2d(np.asarray(queries))
        else:
            Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = Q.shape[0]
        if self._size == 0:
            return [[] for _ in range(n_queries)]
        queries_n = self._prepare_queries(Q, prenormalized)
        scores, rows = chunked_topk(
            queries_n,
            self._matrix[: self._size],
            top_k=top_k,
            chunk_size=self._chunk_size,
            corpus_prenormalized=True,
        )
        # float32 rounding can push a self-match a hair past 1.0.
        np.clip(scores, -1.0, 1.0, out=scores)
        live_ids = self._ids[: self._size]
        results: List[List[IndexHit]] = []
        for qi in range(n_queries):
            hits: List[IndexHit] = []
            for j in range(scores.shape[1]):
                score = float(scores[qi, j])
                if not np.isfinite(score):
                    continue
                if score_threshold is not None and score < score_threshold:
                    continue
                hits.append(IndexHit(id=int(live_ids[rows[qi, j]]), score=score))
            results.append(hits)
        return results
