"""Versioned, crash-safe snapshot persistence for indexes (and caches).

A snapshot is a directory holding:

* ``manifest.json`` — a versioned JSON document carrying the format tag, the
  backend's registry name, the constructor parameters needed to rebuild an
  empty instance, the small scalar state (next id, training counters, RNG
  state) and the names of the arrays the snapshot must contain;
* ``arrays/<name>.npy`` — every numpy array of the live state (the storage
  matrix or code matrix, norms, ids, centroids, …) as a raw ``.npy`` file, so
  :func:`load_index` can memory-map them (``mmap=True``) without copying;
* optionally ``deltas.jsonl`` + ``deltas/<seq>.npy`` — an append-only delta
  log of mutations applied since the full snapshot (see :func:`append_delta`),
  folded back into a full snapshot by :func:`compact_snapshot`.

Version 1 snapshots (a single ``arrays.npz``) are still readable; new
snapshots are always written in the version-2 per-array layout.

Crash-safety contract
---------------------
Every snapshot write stages the complete directory under a ``tmp-`` sibling,
fsyncs it, and publishes it with ``os.replace`` (:func:`atomic_snapshot_dir`).
The manifest is written *last* inside the stage, so a torn stage (crash
mid-write) never contains a complete manifest+arrays pair and is rejected by
:func:`read_manifest` / :func:`read_arrays`; the previous generation at the
target path survives byte-for-byte. Publishing replaces the *whole*
directory, so files a smaller new generation does not write (stale deltas,
larger prior arrays) cannot leak into it. Delta appends commit on the
``deltas.jsonl`` line: the per-delta ``.npy`` is written and fsynced first,
and a torn trailing line (or an orphan ``.npy``) is ignored by readers.

Loading validates the manifest *before* touching any array: a missing file,
undecodable JSON, a foreign ``format`` tag or an unsupported ``version``
raise :class:`SnapshotError` with a message naming the offending field, so a
corrupted or future-format checkpoint is rejected instead of half-restored.

The cache-level snapshots (``MeanCache.save`` / ``GPTCache.save``) reuse the
same manifest/array/atomic-commit discipline with their own format tags and
nest an index snapshot in an ``index/`` subdirectory, so one recursive copy
of the directory is a complete warm-start image.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

INDEX_FORMAT = "repro-index"
#: Version 2 stores per-array raw ``.npy`` files (mmap-able); version 1
#: stored a single ``arrays.npz`` and is still readable.
INDEX_VERSION = 2

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"  # legacy v1 payload
ARRAYS_DIR = "arrays"  # v2 payload: one raw .npy per array
DELTAS_NAME = "deltas.jsonl"
DELTAS_DIR = "deltas"

_ARRAY_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.+-]*$")


class SnapshotError(ValueError):
    """A snapshot is missing, corrupted, foreign or version-incompatible."""


# --------------------------------------------------------------------------- #
# Durability helpers
# --------------------------------------------------------------------------- #
def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    # Windows cannot open directories for fsync; directory-entry durability
    # is a POSIX concept anyway, so silently skip there.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_tree(root: Path) -> None:
    """fsync every file and directory under ``root`` (bottom-up)."""
    for dirpath, _dirnames, filenames in os.walk(root, topdown=False):
        for name in filenames:
            _fsync_file(Path(dirpath) / name)
        _fsync_dir(Path(dirpath))


@contextmanager
def atomic_snapshot_dir(path: "str | Path") -> Iterator[Path]:
    """Stage a snapshot directory and atomically publish it at ``path``.

    Yields a fresh ``tmp-``-prefixed sibling directory to write into. On
    clean exit the stage is fsynced and renamed over ``path`` (the previous
    generation, if any, is moved aside first and removed after the publish),
    so readers only ever observe a complete old or a complete new snapshot —
    never a mix. On an exception the stage is deleted and the target is left
    untouched; a hard crash can at worst leave a ``tmp-`` sibling behind,
    which no loader accepts as a snapshot path and which the next successful
    publish does not depend on.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    stage = Path(tempfile.mkdtemp(prefix=f"tmp-{target.name}-", dir=target.parent))
    try:
        yield stage
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    _fsync_tree(stage)
    doomed: Optional[Path] = None
    if target.exists():
        doomed = (
            Path(
                tempfile.mkdtemp(prefix=f"tmp-{target.name}-old-", dir=target.parent)
            )
            / "previous"
        )
        os.replace(target, doomed)
    os.replace(stage, target)
    _fsync_dir(target.parent)
    if doomed is not None:
        shutil.rmtree(doomed.parent, ignore_errors=True)


# --------------------------------------------------------------------------- #
# Manifest + array payload
# --------------------------------------------------------------------------- #
def write_manifest(path: Path, manifest: Mapping[str, object]) -> None:
    """Serialize ``manifest`` as the snapshot directory's manifest.json.

    Callers write the manifest *last* (after every array): under the atomic
    staging of :func:`atomic_snapshot_dir` its presence marks a complete
    stage, so a torn ``tmp-`` directory is never loadable.
    """
    path.mkdir(parents=True, exist_ok=True)
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=1) + "\n", encoding="utf-8"
    )


def read_manifest(
    path: Path, expected_format: str, max_version: int
) -> Dict[str, object]:
    """Read and validate a snapshot manifest; raises :class:`SnapshotError`.

    Checks, in order: the directory and manifest exist, the JSON decodes to
    an object, the ``format`` tag matches ``expected_format``, and the
    ``version`` is an integer in ``[1, max_version]``.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"corrupted snapshot manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"corrupted snapshot manifest {manifest_path}: not an object")
    got_format = manifest.get("format")
    if got_format != expected_format:
        raise SnapshotError(
            f"snapshot at {path} has format {got_format!r}, expected {expected_format!r}"
        )
    version = manifest.get("version")
    if not isinstance(version, int) or not 1 <= version <= max_version:
        raise SnapshotError(
            f"snapshot at {path} has unsupported version {version!r} "
            f"(this build reads versions 1..{max_version})"
        )
    return manifest


def write_arrays(path: Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Write the snapshot's numpy payload as raw per-array ``.npy`` files.

    One file per array under ``arrays/`` keeps every matrix individually
    memory-mappable on load (an npz member cannot be mmapped through the zip
    container).
    """
    arrays_dir = Path(path) / ARRAYS_DIR
    arrays_dir.mkdir(parents=True, exist_ok=True)
    for name, value in arrays.items():
        if not _ARRAY_NAME_RE.match(name):
            raise SnapshotError(f"array name {name!r} is not snapshot-safe")
        np.save(arrays_dir / f"{name}.npy", np.asarray(value))


def read_arrays(
    path: Path,
    mmap: bool = False,
    expected: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Load the snapshot's numpy payload; raises :class:`SnapshotError`.

    ``mmap=True`` returns read-only ``np.memmap`` views of the version-2
    per-array files — no bytes are copied until a consumer touches the pages.
    Version-1 ``arrays.npz`` payloads are still readable (always copied; the
    zip container cannot be mmapped). ``expected`` names arrays that must be
    present — a stage torn before all arrays landed is rejected instead of
    half-restored.
    """
    path = Path(path)
    arrays_dir = path / ARRAYS_DIR
    out: Dict[str, np.ndarray] = {}
    if arrays_dir.is_dir():
        for file in sorted(arrays_dir.glob("*.npy")):
            try:
                out[file.stem] = np.load(
                    file,
                    mmap_mode="r" if mmap else None,
                    allow_pickle=False,
                )
            except (OSError, ValueError) as exc:
                raise SnapshotError(f"corrupted snapshot array {file}: {exc}") from exc
    elif (path / ARRAYS_NAME).is_file():
        try:
            with np.load(path / ARRAYS_NAME, allow_pickle=False) as data:
                out = {name: data[name] for name in data.files}
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"corrupted snapshot arrays {path / ARRAYS_NAME}: {exc}"
            ) from exc
    else:
        raise SnapshotError(f"no snapshot arrays at {arrays_dir}")
    if expected is not None:
        missing = sorted(set(expected) - set(out))
        if missing:
            raise SnapshotError(
                f"snapshot at {path} is missing arrays {missing} (torn write?)"
            )
    return out


# --------------------------------------------------------------------------- #
# Index snapshots
# --------------------------------------------------------------------------- #
def save_index(index: object, path: "str | Path") -> Path:
    """Snapshot any backend implementing the snapshot protocol to ``path``.

    The manifest records the backend's registry name and constructor
    parameters, so :func:`load_index` can rebuild it without the caller
    knowing the concrete class. The write is atomic (see
    :func:`atomic_snapshot_dir`): the previous snapshot at ``path`` —
    including any delta log accumulated on top of it — is replaced wholesale
    only once the new generation is completely on disk.
    """
    backend = getattr(index, "snapshot_backend", None)
    if backend is None:
        raise SnapshotError(
            f"{type(index).__name__} does not support snapshots "
            "(no snapshot_backend name)"
        )
    path = Path(path)
    arrays = index._snapshot_arrays()
    manifest = {
        "format": INDEX_FORMAT,
        "version": INDEX_VERSION,
        "backend": backend,
        "params": index._snapshot_params(),
        "state": index._snapshot_state(),
        "arrays": sorted(arrays),
    }
    with atomic_snapshot_dir(path) as stage:
        write_arrays(stage, arrays)
        write_manifest(stage, manifest)
    return path


def load_index(
    path: "str | Path", mmap: bool = False, replay_deltas: bool = True
) -> object:
    """Rebuild an index from a :func:`save_index` snapshot.

    Returns a fresh instance of the saved backend with identical live state
    (rows, ids, routing structures, codec tables, RNG), so searches on the
    loaded index reproduce the saved index's results bit-for-bit.

    ``mmap=True`` hands the backend read-only memory-mapped arrays instead
    of in-memory copies; the flat and non-routed quantized backends adopt
    the mapped storage/code matrices directly (zero-copy warm start — bytes
    are paged in on first search, and the first mutation transparently
    materializes a private copy). Backends with derived routing structures
    (IVF, LSH) still rebuild those structures and gain only the smaller
    read.

    ``replay_deltas`` applies the snapshot's append-only delta log (if any)
    on top of the restored base — see :func:`append_delta`. Replaying
    mutations materializes mmap-adopted storage; a compacted snapshot
    (:func:`compact_snapshot`) keeps the warm start zero-copy.
    """
    from repro.index.registry import make_index, validate_backend

    path = Path(path)
    manifest = read_manifest(path, INDEX_FORMAT, INDEX_VERSION)
    try:
        backend = validate_backend(str(manifest.get("backend")))
    except ValueError as exc:
        # An absent/unknown backend name (e.g. a snapshot from a newer build
        # with backends this one lacks) is a snapshot problem, not a caller
        # bug — keep the documented exception contract.
        raise SnapshotError(f"snapshot at {path}: {exc}") from exc
    params = manifest.get("params") or {}
    if not isinstance(params, dict):
        raise SnapshotError(f"snapshot at {path} has a corrupted params block")
    state = manifest.get("state")
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot at {path} has a corrupted state block")
    expected = manifest.get("arrays")
    if expected is not None and not isinstance(expected, list):
        raise SnapshotError(f"snapshot at {path} has a corrupted arrays block")
    arrays = read_arrays(path, mmap=mmap, expected=expected)
    try:
        index = make_index(backend, **params)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"snapshot at {path} has params the {backend!r} backend rejects: {exc}"
        ) from exc
    index._restore(state, arrays)
    if replay_deltas:
        for record in read_deltas(path):
            record.apply(index)
    return index


# --------------------------------------------------------------------------- #
# Append-only delta log
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeltaRecord:
    """One committed entry of a snapshot's append-only delta log."""

    seq: int
    ids: Tuple[int, ...]
    removed: Tuple[int, ...]
    #: vectors added by this delta, aligned with ``ids`` (None for pure
    #: removals); dtype preserved from the append call.
    vectors: Optional[np.ndarray]
    #: opaque JSON payload the caller attached (e.g. the tier's entry texts)
    meta: Optional[object] = None

    def apply(self, index) -> None:
        """Replay this delta against a restored index."""
        if self.vectors is not None and len(self.ids):
            index.add_batch(self.vectors, ids=list(self.ids))
        for removed_id in self.removed:
            index.remove(int(removed_id))


def _delta_lines(path: Path) -> List[Dict[str, object]]:
    """Parsed ``deltas.jsonl`` lines, tolerating a torn trailing line.

    A line that fails to decode is the uncommitted tail of a crashed append
    when (and only when) it is the last non-empty line — anything earlier is
    real corruption and raises :class:`SnapshotError`.
    """
    log = path / DELTAS_NAME
    if not log.is_file():
        return []
    raw_lines = [
        line for line in log.read_text(encoding="utf-8").splitlines() if line.strip()
    ]
    records: List[Dict[str, object]] = []
    for i, line in enumerate(raw_lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(raw_lines) - 1:
                break  # torn trailing append; the log is valid up to here
            raise SnapshotError(f"corrupted delta log {log}: line {i + 1}: {exc}") from exc
        if not isinstance(record, dict):
            raise SnapshotError(f"corrupted delta log {log}: line {i + 1} is not an object")
        records.append(record)
    return records


def read_deltas(path: "str | Path") -> List[DeltaRecord]:
    """The snapshot's committed delta records, in append order.

    A trailing record whose per-delta ``.npy`` never landed (crash between
    the array write and the log append is impossible — the array is written
    first — but the converse orphan is) is dropped; a missing array earlier
    in the log raises :class:`SnapshotError`.
    """
    path = Path(path)
    lines = _delta_lines(path)
    records: List[DeltaRecord] = []
    for i, line in enumerate(lines):
        file_name = line.get("file")
        vectors: Optional[np.ndarray] = None
        if file_name is not None:
            delta_file = path / str(file_name)
            if not delta_file.is_file():
                if i == len(lines) - 1:
                    break  # torn trailing append
                raise SnapshotError(
                    f"delta log at {path} references missing array {file_name!r}"
                )
            try:
                vectors = np.load(delta_file, allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise SnapshotError(
                    f"corrupted delta array {delta_file}: {exc}"
                ) from exc
        records.append(
            DeltaRecord(
                seq=int(line.get("seq", i + 1)),
                ids=tuple(int(x) for x in line.get("ids", ())),
                removed=tuple(int(x) for x in line.get("removed", ())),
                vectors=vectors,
                meta=line.get("meta"),
            )
        )
    return records


def append_delta(
    path: "str | Path",
    vectors: Optional[np.ndarray] = None,
    ids: Optional[Sequence[int]] = None,
    removed: Sequence[int] = (),
    meta: Optional[object] = None,
) -> int:
    """Append one mutation record to the snapshot's delta log; returns its seq.

    Cost is proportional to the delta, not the snapshot: the added vectors
    land in their own ``deltas/<seq>.npy`` (fsynced before the log line
    commits them) and one JSON line is appended to ``deltas.jsonl`` — the
    full arrays are never rewritten. The log is folded back into a full
    snapshot by :func:`compact_snapshot` (or implicitly by the next
    :func:`save_index`, whose atomic directory replace discards it).
    """
    path = Path(path)
    if not (path / MANIFEST_NAME).is_file():
        raise SnapshotError(f"no snapshot at {path} to append a delta to")
    if vectors is not None:
        vectors = np.atleast_2d(np.asarray(vectors))
        if ids is None or len(ids) != vectors.shape[0]:
            raise ValueError("ids must align with vectors")
    elif ids:
        raise ValueError("ids given without vectors")
    seq = len(_delta_lines(path)) + 1
    record: Dict[str, object] = {
        "seq": seq,
        "ids": [int(i) for i in (ids or ())],
        "removed": [int(i) for i in removed],
        "file": None,
    }
    if meta is not None:
        record["meta"] = meta
    if vectors is not None:
        deltas_dir = path / DELTAS_DIR
        deltas_dir.mkdir(exist_ok=True)
        file_name = f"{DELTAS_DIR}/delta-{seq:08d}.npy"
        np.save(path / file_name, vectors)
        _fsync_file(path / file_name)
        _fsync_dir(deltas_dir)
        record["file"] = file_name
    # The log line is the commit point: a crash before this append leaves an
    # ignored orphan .npy, a crash mid-append leaves a torn trailing line
    # that readers skip.
    with open(path / DELTAS_NAME, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return seq


def delta_log_size(path: "str | Path") -> Tuple[int, int]:
    """(number of committed delta records, total rows they add)."""
    lines = _delta_lines(Path(path))
    return len(lines), sum(len(line.get("ids", ())) for line in lines)


def compact_snapshot(path: "str | Path", mmap: bool = False) -> object:
    """Fold the delta log into a new full snapshot; returns the loaded index.

    Loads the base snapshot plus deltas, then atomically republishes the
    result as a fresh full snapshot (dropping the log). Runs off the query
    path — cache tiers hook it into their ``maintenance()`` cadence.
    """
    index = load_index(path, mmap=mmap, replay_deltas=True)
    save_index(index, path)
    return index
