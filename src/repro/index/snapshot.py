"""Versioned snapshot persistence for indexes (and the caches above them).

A snapshot is a directory holding exactly two artefacts:

* ``manifest.json`` — a versioned JSON document carrying the format tag, the
  backend's registry name, the constructor parameters needed to rebuild an
  empty instance, and the small scalar state (next id, training counters,
  RNG state);
* ``arrays.npz`` — every numpy array of the live state (the storage matrix
  or code matrix, norms, ids, centroids, …).

Loading validates the manifest *before* touching any array: a missing file,
undecodable JSON, a foreign ``format`` tag or an unsupported ``version``
raise :class:`SnapshotError` with a message naming the offending field, so a
corrupted or future-format checkpoint is rejected instead of half-restored.

The cache-level snapshots (``MeanCache.save`` / ``GPTCache.save``) reuse the
same manifest discipline with their own format tags and nest an index
snapshot in an ``index/`` subdirectory, so one recursive copy of the
directory is a complete warm-start image.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Tuple

import numpy as np

INDEX_FORMAT = "repro-index"
INDEX_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"


class SnapshotError(ValueError):
    """A snapshot is missing, corrupted, foreign or version-incompatible."""


def write_manifest(path: Path, manifest: Mapping[str, object]) -> None:
    """Serialize ``manifest`` as the snapshot directory's manifest.json."""
    path.mkdir(parents=True, exist_ok=True)
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=1) + "\n", encoding="utf-8"
    )


def read_manifest(
    path: Path, expected_format: str, max_version: int
) -> Dict[str, object]:
    """Read and validate a snapshot manifest; raises :class:`SnapshotError`.

    Checks, in order: the directory and manifest exist, the JSON decodes to
    an object, the ``format`` tag matches ``expected_format``, and the
    ``version`` is an integer in ``[1, max_version]``.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"corrupted snapshot manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"corrupted snapshot manifest {manifest_path}: not an object")
    got_format = manifest.get("format")
    if got_format != expected_format:
        raise SnapshotError(
            f"snapshot at {path} has format {got_format!r}, expected {expected_format!r}"
        )
    version = manifest.get("version")
    if not isinstance(version, int) or not 1 <= version <= max_version:
        raise SnapshotError(
            f"snapshot at {path} has unsupported version {version!r} "
            f"(this build reads versions 1..{max_version})"
        )
    return manifest


def write_arrays(path: Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Write the snapshot's numpy payload next to its manifest."""
    path.mkdir(parents=True, exist_ok=True)
    np.savez(path / ARRAYS_NAME, **{k: np.asarray(v) for k, v in arrays.items()})


def read_arrays(path: Path) -> Dict[str, np.ndarray]:
    """Load the snapshot's numpy payload; raises :class:`SnapshotError`."""
    arrays_path = Path(path) / ARRAYS_NAME
    if not arrays_path.is_file():
        raise SnapshotError(f"no snapshot arrays at {arrays_path}")
    try:
        with np.load(arrays_path) as data:
            return {name: data[name] for name in data.files}
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"corrupted snapshot arrays {arrays_path}: {exc}") from exc


# --------------------------------------------------------------------------- #
# Index snapshots
# --------------------------------------------------------------------------- #
def save_index(index, path: "str | Path") -> Path:
    """Snapshot any backend implementing the snapshot protocol to ``path``.

    The manifest records the backend's registry name and constructor
    parameters, so :func:`load_index` can rebuild it without the caller
    knowing the concrete class.
    """
    backend = getattr(index, "snapshot_backend", None)
    if backend is None:
        raise SnapshotError(
            f"{type(index).__name__} does not support snapshots "
            "(no snapshot_backend name)"
        )
    path = Path(path)
    manifest = {
        "format": INDEX_FORMAT,
        "version": INDEX_VERSION,
        "backend": backend,
        "params": index._snapshot_params(),
        "state": index._snapshot_state(),
    }
    write_arrays(path, index._snapshot_arrays())
    write_manifest(path, manifest)
    return path


def load_index(path: "str | Path"):
    """Rebuild an index from a :func:`save_index` snapshot.

    Returns a fresh instance of the saved backend with identical live state
    (rows, ids, routing structures, codec tables, RNG), so searches on the
    loaded index reproduce the saved index's results bit-for-bit.
    """
    from repro.index.registry import make_index, validate_backend

    path = Path(path)
    manifest = read_manifest(path, INDEX_FORMAT, INDEX_VERSION)
    try:
        backend = validate_backend(str(manifest.get("backend")))
    except ValueError as exc:
        # An absent/unknown backend name (e.g. a snapshot from a newer build
        # with backends this one lacks) is a snapshot problem, not a caller
        # bug — keep the documented exception contract.
        raise SnapshotError(f"snapshot at {path}: {exc}") from exc
    params = manifest.get("params") or {}
    if not isinstance(params, dict):
        raise SnapshotError(f"snapshot at {path} has a corrupted params block")
    state = manifest.get("state")
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot at {path} has a corrupted state block")
    arrays = read_arrays(path)
    try:
        index = make_index(backend, **params)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"snapshot at {path} has params the {backend!r} backend rejects: {exc}"
        ) from exc
    index._restore(state, arrays)
    return index
