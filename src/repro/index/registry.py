"""String-keyed factory registry for vector-index backends.

Everything that owns a :class:`~repro.index.base.VectorIndex` — the caches,
the pipeline's retrieve stage, the fleet benchmark — selects its backend
through :func:`make_index`, so swapping exact search for IVF or LSH is a
configuration change (``MeanCacheConfig(index_backend="ivf")``) rather than
a code change:

>>> from repro.index import make_index
>>> index = make_index("ivf", dim=64, nprobe=16)
>>> type(index).__name__
'IVFIndex'

Built-in backends: ``"flat"`` (exact), ``"ivf"`` (k-means inverted lists),
``"lsh"`` (random-hyperplane hashing), ``"sq8"`` (int8 scalar-quantized
storage), ``"pq"`` (product quantization), and the routed compositions
``"ivf+sq8"`` / ``"ivf+pq"`` (IVF cells over quantized rows).  Out-of-tree
backends (a GPU matrix, a remote shard) register themselves with
:func:`register_index` and become addressable from every cache config in
the process.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.index.base import VectorIndex
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFIndex
from repro.index.lsh import LSHIndex
from repro.index.quantized import PQIndex, SQ8Index

_FACTORIES: Dict[str, Callable[..., VectorIndex]] = {}


def register_index(
    name: str, factory: Callable[..., VectorIndex], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name`` (case-insensitive).

    ``factory`` is any callable returning a :class:`VectorIndex` when called
    with ``dim=...`` plus backend-specific keyword parameters.  Re-registering
    an existing name raises unless ``overwrite=True``.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"index backend {key!r} is already registered")
    _FACTORIES[key] = factory


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def validate_backend(backend: str) -> str:
    """Normalise a backend name, raising ``ValueError`` for unknown ones.

    Shared by :func:`make_index` and the cache configs
    (``MeanCacheConfig`` / ``GPTCacheConfig``) so the lookup rule and the
    error message cannot drift between them.  Returns the normalised key.
    """
    key = str(backend).strip().lower()
    if key not in _FACTORIES:
        raise ValueError(
            f"unknown index backend {backend!r}; available: "
            + ", ".join(available_backends())
        )
    return key


def make_index(backend: str = "flat", **params) -> VectorIndex:
    """Build a vector index by backend name.

    Parameters
    ----------
    backend:
        A registered name — ``"flat"``, ``"ivf"`` or ``"lsh"`` out of the
        box (case-insensitive).
    **params:
        Passed through to the backend constructor (``dim``, ``dtype``, and
        the backend's own knobs: ``nlist``/``nprobe`` for IVF,
        ``n_tables``/``n_bits``/``multiprobe`` for LSH, …).

    Raises
    ------
    ValueError
        For an unknown backend name (the message lists what is available).
    """
    return _FACTORIES[validate_backend(backend)](**params)


def seeded_params(
    backend: str, params: Mapping[str, object], seed: int
) -> Dict[str, object]:
    """Return ``params`` with ``seed`` injected when the backend accepts it.

    Shared by the benchmark harnesses (``run_backend_sweep`` /
    ``run_fleet_bench``) so their determinism rule cannot drift.  An
    explicit ``seed`` in ``params`` always wins.  Otherwise support is
    detected from the factory's signature when it names ``seed``
    explicitly (this also covers factories with other *required*
    arguments); factories that hide their parameters behind ``**kwargs``
    (the routed-composition wrappers) are probed by constructing a
    throwaway empty instance — cheap, since backends allocate storage
    lazily.  Backends without a seed parameter (``flat``, custom
    registrations) come back unchanged.
    """
    import inspect

    merged = dict(params)
    if "seed" in merged:
        return merged
    factory = _FACTORIES[validate_backend(backend)]
    try:
        signature_params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - C-level callables
        signature_params = {}
    if "seed" in signature_params:
        merged["seed"] = seed
        return merged
    takes_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature_params.values()
    )
    if takes_kwargs:
        try:
            factory(**merged, seed=seed)
        except TypeError:
            return merged
        merged["seed"] = seed
    return merged


def resolve_index(
    index: Optional[VectorIndex],
    backend: str,
    params: Optional[Mapping[str, object]] = None,
) -> VectorIndex:
    """The caches' index-resolution rule, shared so it cannot drift.

    An explicitly injected ``index`` instance wins over the ``backend``
    name; it must be **empty**, because cache entry ids and index ids are
    one namespace — pre-existing vectors would be unreachable by the
    cache's entry lookups.  With no instance, the backend is built via
    :func:`make_index`.
    """
    if index is not None:
        if len(index) != 0:
            raise ValueError("an explicitly injected index must be empty")
        return index
    return make_index(backend, **dict(params or {}))


def _routed(cls) -> Callable[..., VectorIndex]:
    """Factory composing IVF coarse routing over a quantized storage tier.

    ``seed`` is an explicit parameter so :func:`seeded_params` can detect
    seed support from the signature without constructing a probe instance.
    """

    def factory(seed: int = 0, **params) -> VectorIndex:
        params.setdefault("routed", True)
        return cls(seed=seed, **params)

    return factory


register_index("flat", FlatIndex)
register_index("ivf", IVFIndex)
register_index("lsh", LSHIndex)
register_index("sq8", SQ8Index)
register_index("pq", PQIndex)
register_index("ivf+sq8", _routed(SQ8Index))
register_index("ivf+pq", _routed(PQIndex))
