"""Random-hyperplane LSH index with multi-table, multi-probe search.

:class:`LSHIndex` shares the flat storage layer (pre-normalized float32
rows, O(1) appends, swap-deletes — it subclasses
:class:`repro.index.FlatIndex`) and routes queries through locality-sensitive
hashing instead of a learned partition:

* each of ``n_tables`` tables draws ``n_bits`` random hyperplanes (Gaussian
  normals); a vector's bucket key in a table is the sign pattern of its
  ``n_bits`` projections, packed into an integer;
* two unit vectors at angle θ agree on one hyperplane with probability
  ``1 − θ/π`` (Goemans–Williamson), so near-duplicates — the traffic a
  semantic cache converts into hits — land in the same bucket with high
  probability while unrelated queries scatter;
* a search hashes the query once per table and brute-forces the union of
  the matched buckets.  With ``multiprobe ≥ 1`` it additionally probes, per
  table, the ``multiprobe`` buckets reached by flipping the query's
  *least-confident* key bits — the ones whose projection lies closest to
  the hyperplane, i.e. the bits most likely to disagree with a true
  neighbour's signature (directed multi-probe, Lv et al., VLDB 2007).
  Each probe is one extra bucket per table, so recall rises steeply for a
  near-constant candidate-set cost — far cheaper than adding tables.

Unlike IVF there is no training step: hashing works from the first insert,
add/remove are O(n_tables) dictionary updates, and the structure never needs
repartitioning.  The trade-off is that recall is workload-dependent — keys
collide by angle only, so queries far from every stored vector can return
fewer than ``top_k`` candidates (or none), which a cache interprets as a
miss anyway.

Determinism: hyperplanes derive from ``seed`` alone, and bucket keys are
computed from the stored (already normalized, storage-dtype) rows at both
insert and remove time, so the table state is reproducible for a given
operation sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.index.base import IndexHit
from repro.index.flat import _MIN_CAPACITY, FlatIndex
from repro.index.postings import Postings, RowMap, topk_hits


class LSHIndex(FlatIndex):
    """Approximate incremental cosine index over random-hyperplane buckets.

    Parameters
    ----------
    dim, dtype, initial_capacity, chunk_size:
        Storage-layer knobs, identical to :class:`FlatIndex`.
    n_tables:
        Independent hash tables.  More tables → higher recall, linearly more
        memory and per-op hashing work.
    n_bits:
        Hyperplanes (key bits) per table.  More bits → smaller buckets
        (≈ ``n / 2^n_bits`` ids each) → faster scans but lower per-table
        collision probability; size it so buckets hold a few dozen ids.
    multiprobe:
        Extra buckets probed per table by flipping the query's
        ``multiprobe`` least-confident key bits, one at a time
        (0 = exact buckets only).  Probed buckets per table is
        ``1 + multiprobe``.
    seed:
        Seeds the hyperplane draw.
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        dtype: np.dtype = np.float32,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        n_tables: int = 8,
        n_bits: int = 13,
        multiprobe: int = 3,
        seed: int = 0,
    ) -> None:
        if n_tables < 1:
            raise ValueError("n_tables must be >= 1")
        if not 1 <= n_bits <= 62:
            raise ValueError("n_bits must be in [1, 62]")
        if not 0 <= multiprobe <= n_bits:
            raise ValueError("multiprobe must be in [0, n_bits]")
        super().__init__(
            dim=dim, dtype=dtype, initial_capacity=initial_capacity, chunk_size=chunk_size
        )
        self._n_tables = int(n_tables)
        self._n_bits = int(n_bits)
        self._multiprobe = int(multiprobe)
        self._seed = int(seed)
        self._planes: Optional[np.ndarray] = None  # (n_tables * n_bits, d)
        self._powers = (1 << np.arange(n_bits, dtype=np.int64))
        # One dict of bucket-key -> Postings per table.
        self._tables: List[Dict[int, Postings]] = [{} for _ in range(n_tables)]
        # Insert-time bucket keys per id, (n_tables,) each — consulted on
        # removal so deletes never depend on recomputing a borderline sign.
        self._keys_of: Dict[int, np.ndarray] = {}
        self._row_of = RowMap()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_tables(self) -> int:
        """Number of independent hash tables."""
        return self._n_tables

    @property
    def n_bits(self) -> int:
        """Key bits (hyperplanes) per table."""
        return self._n_bits

    @property
    def multiprobe(self) -> int:
        """Maximum Hamming distance of additionally probed bucket keys."""
        return self._multiprobe

    @property
    def routing_nbytes(self) -> int:
        """Bytes of the routing structures (planes + buckets + row map).

        Kept separate from :attr:`nbytes`, which across every backend counts
        only the live row storage.
        """
        total = self._row_of.nbytes
        if self._planes is not None:
            total += int(self._planes.nbytes)
        for table in self._tables:
            total += sum(p.nbytes for p in table.values())
        total += sum(k.nbytes for k in self._keys_of.values())
        return int(total)

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #
    def _ensure_planes(self) -> np.ndarray:
        if self._planes is None:
            rng = np.random.default_rng(self._seed)
            self._planes = np.ascontiguousarray(
                rng.standard_normal((self._n_tables * self._n_bits, self._dim)),
                dtype=self._dtype,
            )
        return self._planes

    def _project(self, unit_rows: np.ndarray) -> np.ndarray:
        """Signed hyperplane projections, shaped ``(n, n_tables, n_bits)``."""
        planes = self._ensure_planes()
        return (unit_rows @ planes.T).reshape(-1, self._n_tables, self._n_bits)

    def _keys(self, projections: np.ndarray) -> np.ndarray:
        """Bucket key per (row, table): sign pattern packed into an int64."""
        return (projections > 0) @ self._powers  # (n, n_tables)

    def _hash(self, unit_rows: np.ndarray) -> np.ndarray:
        """Bucket key per (row, table) for the insert/remove path."""
        return self._keys(self._project(unit_rows))

    # ------------------------------------------------------------------ #
    # Mutation hooks (storage layer calls these after each change)
    # ------------------------------------------------------------------ #
    def _post_add(self, ids: np.ndarray, start_row: int) -> None:
        self._row_of.set_block(ids, start_row)
        rows = self._matrix[start_row : start_row + ids.shape[0]]
        keys = self._hash(rows)
        for i, id in enumerate(ids.tolist()):
            # copy(): a view of `keys` would pin the whole batch's key
            # matrix in memory for as long as any single id survives.
            id_keys = keys[i].copy()
            self._keys_of[id] = id_keys
            for t in range(self._n_tables):
                bucket = self._tables[t].get(int(id_keys[t]))
                if bucket is None:
                    bucket = self._tables[t][int(id_keys[t])] = Postings()
                bucket.append(id)

    def _post_remove(self, id: int, row: int, moved_id: Optional[int]) -> None:
        self._row_of.unset(id)
        if moved_id is not None:
            self._row_of.move(moved_id, row)
        if self._row_of.compaction_due(self._size):
            # Entry ids grow forever; re-anchor the id→row table to the
            # live span so bounded caches don't leak map slots under churn.
            self._row_of.maybe_compact(self._ids[: self._size])
        id_keys = self._keys_of.pop(id)
        for t in range(self._n_tables):
            key = int(id_keys[t])
            bucket = self._tables[t][key]
            bucket.discard(id)
            if not len(bucket):
                del self._tables[t][key]

    def _post_clear(self) -> None:
        self._tables = [{} for _ in range(self._n_tables)]
        self._keys_of = {}
        self._row_of.clear()
        if self._dim is None:
            # Data-driven dim unpinned: the next corpus may have another
            # dimensionality, so the hyperplanes must be redrawn for it.
            self._planes = None

    # ------------------------------------------------------------------ #
    # Snapshot protocol (see repro.index.snapshot)
    # ------------------------------------------------------------------ #
    # Only the flat storage is serialized: the hyperplanes derive from
    # ``seed`` and bucket keys are computed from the stored storage-dtype
    # rows, so re-hashing on restore rebuilds byte-identical tables.
    snapshot_backend = "lsh"

    def _snapshot_params(self) -> "Dict[str, object]":
        params = super()._snapshot_params()
        params.update(
            {
                "n_tables": self._n_tables,
                "n_bits": self._n_bits,
                "multiprobe": self._multiprobe,
                "seed": self._seed,
            }
        )
        return params

    def _post_restore(self) -> None:
        if self._size:
            self._post_add(self._ids[: self._size].copy(), 0)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _candidates(self, probe_keys: List[List[int]]) -> Optional[np.ndarray]:
        """Union of the probed buckets' ids for one query (None when empty).

        ``probe_keys`` holds, per table, the exact key followed by the
        directed multi-probe keys.
        """
        chunks: List[np.ndarray] = []
        for t, keys in enumerate(probe_keys):
            table = self._tables[t]
            for probe_key in keys:
                bucket = table.get(probe_key)
                if bucket is not None:
                    # Inlined Postings.view(): this runs n_tables ×
                    # (1 + multiprobe) times per query.
                    chunks.append(bucket._ids[: bucket._size])
        if not chunks:
            return None
        # An id can appear in several tables' buckets; the duplicates are
        # NOT removed here — topk_hits dedupes the few winners instead,
        # which is far cheaper than a per-query np.unique over the union.
        # Per-probe, bounded by tables*(1+multiprobe) small bucket views —
        # not a per-entry O(n) rebuild.  # repro: ignore[RPL003]
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    def search(
        self,
        queries: np.ndarray,
        top_k: int = 5,
        score_threshold: Optional[float] = None,
    ) -> List[List[IndexHit]]:
        """Hash each query, brute-force the union of its probed buckets.

        A query costs ``n_tables × n_bits`` projections plus one scoring
        pass over the candidate union; with ``multiprobe`` the buckets of
        the least-confident bit flips are probed as well.  Hit lists may
        hold fewer than ``min(top_k, len(self))`` entries — queries far
        from everything stored may collide with nothing, which callers
        treat as a miss.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = Q.shape[0]
        if self._size == 0:
            return [[] for _ in range(n_queries)]
        if Q.shape[1] != self._dim:
            raise ValueError(f"query dim {Q.shape[1]} != index dim {self._dim}")
        unit, _ = self._normalize(Q)
        Qn = np.ascontiguousarray(unit, dtype=self._dtype)
        projections = self._project(Qn)  # (q, n_tables, n_bits)
        exact_keys = self._keys(projections)  # (q, n_tables)
        if self._multiprobe > 0:
            # Directed multi-probe: per table, flip the bits whose
            # projection sits closest to its hyperplane — the likeliest
            # sign disagreements with a true neighbour.
            mp = self._multiprobe
            flip_bits = np.argpartition(np.abs(projections), kth=mp - 1, axis=2)[
                :, :, :mp
            ]
            deltas = self._powers[flip_bits]  # (q, n_tables, mp)
            # One (q, n_tables, 1+mp) key tensor per *batch*, sized by the
            # multiprobe budget, not the index.  # repro: ignore[RPL003]
            probe_keys = np.concatenate(
                [exact_keys[:, :, None], exact_keys[:, :, None] ^ deltas], axis=2
            )
        else:
            probe_keys = exact_keys[:, :, None]
        matrix = self._matrix
        results: List[List[IndexHit]] = []
        for qi in range(n_queries):
            cand_ids = self._candidates(probe_keys[qi].tolist())
            if cand_ids is None:
                results.append([])
                continue
            rows = self._row_of.rows(cand_ids)
            scores = matrix[rows] @ Qn[qi]
            results.append(
                topk_hits(
                    cand_ids,
                    scores,
                    top_k,
                    score_threshold,
                    max_duplicates=self._n_tables,
                )
            )
        return results
