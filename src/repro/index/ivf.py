"""IVF (inverted-file) index: k-means-partitioned sublinear cosine search.

:class:`IVFIndex` keeps the exact same pre-normalized float32 row storage as
:class:`repro.index.FlatIndex` (it *is* a ``FlatIndex`` underneath — same
amortized-O(1) appends, swap-with-last deletes, id-centric API) and adds a
coarse quantizer on top:

* the stored vectors are partitioned into ``nlist`` Voronoi cells by
  spherical k-means over the unit rows (centroids live on the unit sphere,
  assignment is by maximum dot product — i.e. cosine);
* each cell owns an **inverted list** of the ids assigned to it;
* a query scores the ``nlist`` centroids (one small matmul), picks the
  ``nprobe`` nearest cells and brute-forces only their lists.

Per-query work drops from O(n·d) to O(nlist·d + (nprobe/nlist)·n·d) — with
``nlist ≈ √n`` and a fixed ``nprobe`` that is sublinear in n, which is what
lets a cache keep sub-millisecond lookups past 10⁵ entries
(``BENCH_index.json`` tracks the measured recall/throughput trade-off).

Incrementality
--------------
The index trains itself lazily: below ``min_train_size`` entries it searches
exactly (flat scan — small caches lose nothing), and the first add that
reaches the threshold triggers k-means and builds the lists.  Further adds
are assigned to their nearest centroid in O(nlist·d); removals pop the id
from its list in O(list length).  As the corpus changes, cell assignments
drift away from the (stale) centroids, so the index retrains and
repartitions in full when either the *size* or the *mutation count*
(adds + removes) since the last training passes ``repartition_growth ×``
the trained size — the latter covers capacity-bounded caches whose size
plateaus while eviction churn replaces their contents.  Amortized O(d)
per mutation, same as the storage layer's capacity doubling.

Search is approximate: a true neighbour whose cell was not probed is
missed.  Raise ``nprobe`` (recall) or lower it (throughput);
``nprobe = nlist`` degenerates to exact search in list order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.index.base import IndexHit
from repro.index.flat import _MIN_CAPACITY, FlatIndex
from repro.index.postings import (
    Postings,
    RowMap,
    build_inverted_lists,
    cell_bounds,
    probe_scan,
    probe_scan_batched,
    probe_scan_threaded,
    topk_hits,
)

# Rows per assignment-matmul block: bounds the (block × nlist) score matrix.
_ASSIGN_BLOCK_ELEMS = 4_194_304


def spherical_kmeans(
    sample: np.ndarray,
    nlist: int,
    iters: int,
    rng: np.random.Generator,
    dtype: np.dtype = np.float32,
) -> np.ndarray:
    """Spherical k-means: unit-norm centroids, max-dot assignment.

    The coarse-quantizer trainer shared by :class:`IVFIndex` and the routed
    quantized backends (``repro.index.quantized``), so centroid-training
    behaviour (init, dead-cell reseeding, re-normalization) cannot drift
    between them.  Dead cells re-seed onto random sample points.
    """
    n = sample.shape[0]
    nlist = min(nlist, n)
    init = rng.choice(n, size=nlist, replace=False)
    centroids = sample[init].astype(np.float64)
    sample64 = sample.astype(np.float64)
    for _ in range(iters):
        assign = np.argmax(sample64 @ centroids.T, axis=1)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, sample64)
        counts = np.bincount(assign, minlength=nlist)
        empty = counts == 0
        if empty.any():
            sums[empty] = sample64[rng.choice(n, size=int(empty.sum()))]
            counts[empty] = 1
        centroids = sums / counts[:, None]
        norms = np.linalg.norm(centroids, axis=1, keepdims=True)
        centroids /= np.where(norms > 1e-12, norms, 1.0)
    return np.ascontiguousarray(centroids, dtype=dtype)


def sorted_probes(centroid_scores: np.ndarray, nprobe: int) -> np.ndarray:
    """The ``nprobe`` best cells per query, in descending centroid-score order.

    Best-first probing is what makes exact-bound pruning and threshold early
    termination effective (the best candidates surface in the first probes);
    the stable sort keeps the order deterministic under score ties.  Shared
    by :class:`IVFIndex` and the routed quantized backends.
    """
    n_queries, nlist = centroid_scores.shape
    if nprobe < nlist:
        part = np.argpartition(-centroid_scores, kth=nprobe - 1, axis=1)[:, :nprobe]
    else:
        part = np.broadcast_to(np.arange(nlist), (n_queries, nlist))
    order = np.argsort(
        -np.take_along_axis(centroid_scores, part, axis=1), axis=1, kind="stable"
    )
    return np.take_along_axis(part, order, axis=1)


class IVFIndex(FlatIndex):
    """Approximate incremental cosine index over k-means inverted lists.

    Parameters
    ----------
    dim, dtype, initial_capacity, chunk_size:
        Storage-layer knobs, identical to :class:`FlatIndex`.
    nlist:
        Number of k-means cells.  ``None`` (default) picks ``4·⌈√n⌉`` at
        each (re)training from the live size — deliberately finer than the
        classical ``√n`` balance point, because probing is one vectorized
        gather while list scans pay the matmul; smaller cells cut scanned
        rows at a negligible centroid-scan cost for n ≤ 10⁶.
    nprobe:
        Cells probed per query.  The recall/throughput dial: the expected
        scanned fraction of the corpus is ``nprobe / nlist``.
    min_train_size:
        Below this many entries the index stays untrained and searches
        exactly; the first add reaching it triggers k-means.
    train_sample:
        Maximum rows fed to k-means (a uniform sample of the live rows when
        the corpus is larger).
    kmeans_iters:
        Lloyd iterations per training.
    repartition_growth:
        Retrain when ``len(self)`` — or the add/remove count since the last
        training — reaches this multiple of the size at that training
        (amortizes retraining to O(d) per mutation and keeps churning
        plateau-size caches from going stale).
    seed:
        Seeds k-means init and sampling; a given add/remove sequence is
        fully deterministic.
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        dtype: np.dtype = np.float32,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        min_train_size: int = 256,
        train_sample: int = 32768,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
        auto_repartition: bool = True,
        prune_probes: bool = True,
        scan_threads: int = 1,
    ) -> None:
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if min_train_size < 2:
            raise ValueError("min_train_size must be >= 2")
        if train_sample < 2:
            raise ValueError("train_sample must be >= 2")
        if kmeans_iters < 1:
            raise ValueError("kmeans_iters must be >= 1")
        if repartition_growth <= 1.0:
            raise ValueError("repartition_growth must be > 1")
        if scan_threads < 1:
            raise ValueError("scan_threads must be >= 1")
        super().__init__(
            dim=dim, dtype=dtype, initial_capacity=initial_capacity, chunk_size=chunk_size
        )
        self._nlist_config = nlist
        self._nprobe = int(nprobe)
        self._min_train_size = int(min_train_size)
        self._train_sample = int(train_sample)
        self._kmeans_iters = int(kmeans_iters)
        self._repartition_growth = float(repartition_growth)
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._centroids: Optional[np.ndarray] = None  # (nlist, d) unit rows
        self._lists: List[Postings] = []
        self._list_of: Dict[int, int] = {}  # id -> inverted-list index
        self._row_of = RowMap()
        self._trained_size = 0
        # Adds + removes since the last training: a capacity-bounded cache
        # plateaus in size while eviction churn replaces its contents, so
        # growth alone cannot be the repartition trigger.
        self._mutations_since_train = 0
        # With auto_repartition=False, a due retraining is flagged here and
        # deferred to the explicit maintenance() hook, keeping the O(n)
        # k-means off the add path (the serving fleet runs maintenance
        # between batching windows).
        self._auto_repartition = bool(auto_repartition)
        self._repartition_due = False
        # Per-cell (a_min, a_max, b_max) score-bound stats for exact probe
        # pruning; computed lazily from the live rows on the first probed
        # search (or by maintenance()) and updated incrementally on add.
        self._prune_probes = bool(prune_probes)
        self._cell_stats: "Optional[tuple]" = None
        self._scan_threads = int(scan_threads)
        self._scan_stats: Dict[str, int] = {
            "probes_scanned": 0,
            "probes_pruned": 0,
            "rows_scanned": 0,
            "early_stops": 0,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        """Whether the coarse quantizer exists (False → exact flat scans)."""
        return self._centroids is not None

    @property
    def nlist(self) -> int:
        """Current number of cells (0 while untrained)."""
        return 0 if self._centroids is None else int(self._centroids.shape[0])

    @property
    def nprobe(self) -> int:
        """Cells probed per query."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        if int(value) < 1:
            raise ValueError("nprobe must be >= 1")
        self._nprobe = int(value)

    @property
    def routing_nbytes(self) -> int:
        """Bytes of the routing structures (centroids + lists + row map).

        Kept separate from :attr:`nbytes`, which across every backend counts
        only the live row storage.
        """
        total = self._row_of.nbytes + sum(p.nbytes for p in self._lists)
        if self._centroids is not None:
            total += int(self._centroids.nbytes)
        return int(total)

    @property
    def prune_probes(self) -> bool:
        """Whether exact-bound probe pruning is enabled (decision-invariant)."""
        return self._prune_probes

    @prune_probes.setter
    def prune_probes(self, value: bool) -> None:
        self._prune_probes = bool(value)

    @property
    def scan_threads(self) -> int:
        """Worker threads for the optional parallel probe scan (1 = serial)."""
        return self._scan_threads

    @scan_threads.setter
    def scan_threads(self, value: int) -> None:
        if int(value) < 1:
            raise ValueError("scan_threads must be >= 1")
        self._scan_threads = int(value)

    @property
    def scan_stats(self) -> Dict[str, int]:
        """Cumulative probe-scan counters (scanned/pruned cells, rows, stops)."""
        return dict(self._scan_stats)

    def reset_scan_stats(self) -> None:
        """Zero the :attr:`scan_stats` counters."""
        for key in self._scan_stats:
            self._scan_stats[key] = 0

    # ------------------------------------------------------------------ #
    # Training / partitioning
    # ------------------------------------------------------------------ #
    def _assign(self, unit_rows: np.ndarray) -> np.ndarray:
        """Nearest-centroid (max-dot) cell per row, blocked to bound memory."""
        nlist = self._centroids.shape[0]
        block = max(1, _ASSIGN_BLOCK_ELEMS // nlist)
        out = np.empty(unit_rows.shape[0], dtype=np.int64)
        for start in range(0, unit_rows.shape[0], block):
            chunk = unit_rows[start : start + block]
            out[start : start + chunk.shape[0]] = np.argmax(
                chunk @ self._centroids.T, axis=1
            )
        return out

    def _kmeans(self, sample: np.ndarray, nlist: int) -> np.ndarray:
        """Spherical k-means via the shared trainer, in the storage dtype."""
        return spherical_kmeans(
            sample, nlist, self._kmeans_iters, self._rng, dtype=self._dtype
        )

    def _train(self) -> None:
        """(Re)fit centroids on the live rows and rebuild every inverted list."""
        size = self._size
        rows = self._matrix[:size]
        if size > self._train_sample:
            sample = rows[self._rng.choice(size, size=self._train_sample, replace=False)]
        else:
            sample = rows
        nlist = self._nlist_config or 4 * int(math.ceil(math.sqrt(size)))
        nlist = max(1, min(nlist, sample.shape[0]))
        self._centroids = self._kmeans(sample, nlist)
        assign = self._assign(rows)
        self._lists, self._list_of = build_inverted_lists(
            self._ids[:size], assign, nlist
        )
        self._trained_size = size
        self._mutations_since_train = 0
        self._repartition_due = False
        # Bound stats refer to the old partition; recompute lazily (first
        # probed search or maintenance()) from the fresh assignment.
        self._cell_stats = None

    # ------------------------------------------------------------------ #
    # Probe-pruning bound stats
    # ------------------------------------------------------------------ #
    def _cell_stats_update(self, rows: np.ndarray, assign: np.ndarray) -> None:
        """Fold freshly assigned rows into the per-cell bound stats."""
        if self._cell_stats is None:
            return
        a_min, a_max, b_max = self._cell_stats
        R = np.asarray(rows, dtype=np.float64)
        C = self._centroids[assign].astype(np.float64)
        a = np.einsum("ij,ij->i", R, C)
        sq = np.einsum("ij,ij->i", R, R)
        b = np.sqrt(np.maximum(0.0, sq - a * a))
        np.minimum.at(a_min, assign, a)
        np.maximum.at(a_max, assign, a)
        np.maximum.at(b_max, assign, b)

    def _compute_cell_stats(self) -> None:
        """(Re)build the per-cell bound stats from every live row, blocked."""
        nlist = self._centroids.shape[0]
        self._cell_stats = (np.zeros(nlist), np.zeros(nlist), np.zeros(nlist))
        if self._size == 0:
            return
        assign = np.empty(self._size, dtype=np.int64)
        for li, lst in enumerate(self._lists):
            view = lst.view()
            if view.size:
                assign[self._row_of.rows(view)] = li
        block = max(1, _ASSIGN_BLOCK_ELEMS // max(self._dim or 1, 1))
        for start in range(0, self._size, block):
            stop = min(start + block, self._size)
            self._cell_stats_update(self._matrix[start:stop], assign[start:stop])

    def maintenance(self) -> Dict[str, object]:
        """Run deferred repartitioning and bound-stat refreshes off-query.

        With ``auto_repartition=False`` the growth/churn-triggered retraining
        is deferred to this hook; it also precomputes the probe-pruning
        stats so the first search after a (re)partition doesn't pay for them.
        """
        done: Dict[str, object] = {}
        if self._repartition_due:
            self._train()
            done["repartitioned"] = True
            done["trained_size"] = self._trained_size
        if (
            self._prune_probes
            and self._centroids is not None
            and self._cell_stats is None
            and self._size
        ):
            self._compute_cell_stats()
            done["cell_stats_refreshed"] = True
        return done

    # ------------------------------------------------------------------ #
    # Mutation hooks (storage layer calls these after each change)
    # ------------------------------------------------------------------ #
    def _post_add(self, ids: np.ndarray, start_row: int) -> None:
        self._row_of.set_block(ids, start_row)
        if self._centroids is None:
            if self._size >= self._min_train_size:
                self._train()
            return
        block = self._matrix[start_row : start_row + ids.shape[0]]
        assign = self._assign(block)
        for id, li in zip(ids.tolist(), assign.tolist()):
            self._lists[li].append(id)
            self._list_of[id] = li
        self._cell_stats_update(block, assign)
        self._mutations_since_train += ids.shape[0]
        # Repartition on growth (size doubled) or on churn (the corpus
        # turned over in place — size plateaus under a bounded cache's
        # eviction, but stale centroids still degrade recall/balance).
        # Inline by default; deferred to maintenance() when the owner opted
        # the retraining off the query/add path.
        threshold = self._repartition_growth * self._trained_size
        if self._size >= threshold or self._mutations_since_train >= threshold:
            if self._auto_repartition:
                self._train()
            else:
                self._repartition_due = True

    def _post_remove(self, id: int, row: int, moved_id: Optional[int]) -> None:
        self._row_of.unset(id)
        if moved_id is not None:
            self._row_of.move(moved_id, row)
        if self._row_of.compaction_due(self._size):
            # Entry ids grow forever; re-anchor the id→row table to the
            # live span so bounded caches don't leak map slots under churn.
            self._row_of.maybe_compact(self._ids[: self._size])
        if self._centroids is None:
            return
        li = self._list_of.pop(id)
        self._lists[li].discard(id)
        self._mutations_since_train += 1

    def _post_clear(self) -> None:
        self._centroids = None
        self._lists = []
        self._list_of = {}
        self._row_of.clear()
        self._trained_size = 0
        self._mutations_since_train = 0
        self._repartition_due = False
        self._cell_stats = None

    # ------------------------------------------------------------------ #
    # Snapshot protocol (see repro.index.snapshot)
    # ------------------------------------------------------------------ #
    snapshot_backend = "ivf"

    def _snapshot_params(self) -> Dict[str, object]:
        params = super()._snapshot_params()
        params.update(
            {
                "nlist": self._nlist_config,
                "nprobe": self._nprobe,
                "min_train_size": self._min_train_size,
                "train_sample": self._train_sample,
                "kmeans_iters": self._kmeans_iters,
                "repartition_growth": self._repartition_growth,
                "seed": self._seed,
                "auto_repartition": self._auto_repartition,
                "prune_probes": self._prune_probes,
                "scan_threads": self._scan_threads,
            }
        )
        return params

    def _snapshot_state(self) -> Dict[str, object]:
        state = super()._snapshot_state()
        state.update(
            {
                "trained_size": self._trained_size,
                "mutations_since_train": self._mutations_since_train,
                "rng_state": self._rng.bit_generator.state,
                "repartition_due": self._repartition_due,
            }
        )
        return state

    def _snapshot_arrays(self) -> Dict[str, np.ndarray]:
        arrays = super()._snapshot_arrays()
        if self._centroids is not None:
            arrays["centroids"] = self._centroids
            # Cell per live row: the inverted lists and list_of rebuild from
            # this without re-running (rng-consuming) k-means on load.  A
            # trained index drained to empty and reloaded has no id column
            # allocated at all.
            live_ids = (
                self._ids[: self._size]
                if self._ids is not None
                else np.zeros(0, np.int64)
            )
            arrays["assign"] = np.asarray(
                [self._list_of[int(i)] for i in live_ids], dtype=np.int64
            )
        return arrays

    def _post_restore(self) -> None:
        if self._size:
            self._row_of.set_block(self._ids[: self._size].copy(), 0)

    def _restore(
        self, state: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> None:
        super()._restore(state, arrays)
        if "centroids" in arrays:
            self._centroids = np.ascontiguousarray(
                arrays["centroids"], dtype=self._dtype
            )
            assign = np.asarray(arrays["assign"], dtype=np.int64)
            # Use the snapshot's id column, not self._ids — a trained index
            # drained to empty restores with no storage allocated at all.
            self._lists, self._list_of = build_inverted_lists(
                np.asarray(arrays["ids"], dtype=np.int64),
                assign,
                self._centroids.shape[0],
            )
        self._trained_size = int(state["trained_size"])
        self._mutations_since_train = int(state["mutations_since_train"])
        self._repartition_due = bool(state.get("repartition_due", False))
        # Bound stats are derived state; recompute lazily after restore.
        self._cell_stats = None
        rng_state = state.get("rng_state")
        if rng_state is not None:
            rng = np.random.default_rng(self._seed)
            rng.bit_generator.state = rng_state
            self._rng = rng

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    supports_stop_score = True

    def search(
        self,
        queries: np.ndarray,
        top_k: int = 5,
        score_threshold: Optional[float] = None,
        *,
        stop_score: Optional[float] = None,
        prenormalized: bool = False,
    ) -> List[List[IndexHit]]:
        """Probe the ``nprobe`` nearest cells per query and rank their lists.

        Exact (inherited flat scan) while the index is untrained; afterwards
        each query costs one ``(1, nlist)`` centroid matmul plus a
        brute-force pass over the probed lists only.  Hit lists may hold
        fewer than ``min(top_k, len(self))`` entries when the probed cells
        are sparse — the price of approximate search.

        Probes run best-first with exact-bound pruning (decision-invariant;
        see :attr:`prune_probes`).  ``stop_score`` stops probing a query once
        the running best score reaches it — lossy by design, for callers that
        admit on a score threshold the best hit already cleared.
        ``prenormalized=True`` skips query normalization as in
        :meth:`FlatIndex.search`.  All intermediates live in reused scratch
        buffers; the only per-call allocations are the returned hit lists.
        """
        if self._centroids is None:
            return super().search(
                queries,
                top_k=top_k,
                score_threshold=score_threshold,
                prenormalized=prenormalized,
            )
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if prenormalized:
            Q = np.atleast_2d(np.asarray(queries))
        else:
            Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = Q.shape[0]
        if self._size == 0:
            return [[] for _ in range(n_queries)]
        Qn = self._prepare_queries(Q, prenormalized)
        nlist = self._centroids.shape[0]
        nprobe = min(self._nprobe, nlist)
        sc = self._scratch
        centroid_scores = sc.get("ivf.cscores", (n_queries, nlist), self._dtype)
        np.matmul(Qn, self._centroids.T, out=centroid_scores)
        probes = sorted_probes(centroid_scores, nprobe)
        # The threaded scan has no pruning/early-stop hooks (both are
        # result-invariant no-ops, so the serial loop stays the reference);
        # a stop_score request falls back to the serial scan.
        threaded = self._scan_threads > 1 and stop_score is None
        # Bound pruning only pays on the per-cell early-termination scan;
        # plain searches take the single-pass batched scan below, where
        # there is no per-cell control flow left to prune.
        bounds = None
        if stop_score is not None and self._prune_probes and not threaded:
            if self._cell_stats is None:
                self._compute_cell_stats()
            bounds = cell_bounds(centroid_scores, self._cell_stats, sc, "ivf.bounds")
        matrix = self._matrix
        results: List[List[IndexHit]] = []
        for qi in range(n_queries):
            plist = probes[qi]
            total = 0
            for li in plist:
                total += len(self._lists[li])
            if total == 0:
                results.append([])
                continue
            cand_ids = sc.get("ivf.cand_ids", (total,), np.int64)
            cand_rows = sc.get("ivf.cand_rows", (total,), np.int64)
            cand_scores = sc.get("ivf.cand_scores", (total,), self._dtype)
            qn = Qn[qi]
            if threaded:

                def score_rows_alloc(rows: np.ndarray, out: np.ndarray) -> None:
                    np.matmul(matrix[rows], qn, out=out)

                filled = probe_scan_threaded(
                    plist,
                    self._lists,
                    self._row_of,
                    score_rows_alloc,
                    cand_ids,
                    cand_rows,
                    cand_scores,
                    self._scan_threads,
                    self._scan_stats,
                )
            elif stop_score is not None:

                def score_rows(rows: np.ndarray, out: np.ndarray) -> None:
                    rowbuf = sc.get(
                        "ivf.rowgather", (rows.shape[0], matrix.shape[1]), self._dtype
                    )
                    matrix.take(rows, axis=0, out=rowbuf)
                    np.matmul(rowbuf, qn, out=out)

                kth_buf = sc.get("ivf.kth", (total,), self._dtype)
                filled = probe_scan(
                    plist,
                    self._lists,
                    self._row_of,
                    score_rows,
                    cand_ids,
                    cand_rows,
                    cand_scores,
                    kth_buf,
                    top_k,
                    bounds[qi] if bounds is not None else None,
                    stop_score,
                    self._scan_stats,
                )
            else:
                # Plain probing: one gather + one matvec over every probed
                # cell (see probe_scan_batched — per-cell dispatch is the
                # latency floor once cells are small).  Scores come back in
                # ascending-row order; translate rows back to ids in place.

                def score_rows_batched(rows: np.ndarray, out: np.ndarray) -> None:
                    rowbuf = sc.get(
                        "ivf.rowgather", (rows.shape[0], matrix.shape[1]), self._dtype
                    )
                    matrix.take(rows, axis=0, out=rowbuf)
                    np.matmul(rowbuf, qn, out=out)

                filled = probe_scan_batched(
                    plist,
                    self._lists,
                    self._row_of,
                    score_rows_batched,
                    cand_ids,
                    cand_rows,
                    cand_scores,
                    self._scan_stats,
                )
                if filled:
                    self._ids.take(cand_rows[:filled], out=cand_ids[:filled])
            results.append(
                topk_hits(cand_ids[:filled], cand_scores[:filled], top_k, score_threshold)
            )
        return results
