"""Quantized storage backends: int8 scalar quantization and product quantization.

The exact backends keep every embedding as ``d`` float32 values; at the
paper's fleet scale (millions of per-device caches) the embedding matrix is
the cache's dominant memory cost.  The two backends here trade a small amount
of score precision for a 3.5–10x smaller per-entry footprint:

* :class:`SQ8Index` — per-dimension affine **scalar quantization** to one
  uint8 code per dimension.  Ranges are learned per dimension from the first
  ``min_train_size`` vectors (the train set), so the 256 levels cover the
  span the data actually occupies rather than the theoretical [-1, 1] of a
  unit vector.  Scoring is asymmetric: the query stays float32 and is scored
  against the dequantized corpus chunk-by-chunk, so no query-side precision
  is lost.
* :class:`PQIndex` — **product quantization** (Jégou et al., PAMI 2011): the
  vector is split into ``m`` subspaces, each quantized to the id of its
  nearest per-subspace k-means centroid (one uint8 each).  A query is scored
  with ADC (asymmetric distance computation): one ``(m, ksub)`` lookup table
  of query-sub-vector × centroid dot products per query, after which each
  stored vector's score is ``m`` table lookups — no per-entry float math.

Both backends share the flat storage discipline (contiguous code matrix,
amortized-O(1) appends via capacity doubling, O(code_width) swap-with-last
deletes, id-centric API) and train lazily like :class:`~repro.index.IVFIndex`:
below ``min_train_size`` vectors are staged in float32 and searched exactly;
the first add reaching the threshold trains the quantizer, encodes the
staged rows and drops the float staging buffer.  The quantizer is trained
once and then frozen (the standard faiss contract); ``clear``/``rebuild``
reset it.

Optional **exact re-ranking**: with ``rescore > 1`` a search first selects
``top_k · rescore`` candidates by the fast quantized scores, then recomputes
those candidates' scores in float64 against the dequantized codes and ranks
the final ``top_k`` from that — tightening the ordering at a per-query cost
proportional to ``top_k · rescore`` instead of ``n``.

Optional **IVF routing** (``routed=True``, registered as ``"ivf+sq8"`` /
``"ivf+pq"``): the same spherical-k-means coarse quantizer as
:class:`~repro.index.IVFIndex` is trained alongside the codec, so a query
scans only the ``nprobe`` nearest cells' codes — compounding the memory win
with sublinear lookups.  Routing retrains (from the *dequantized* rows — the
float originals are gone by design) when size or churn since the last
training passes ``repartition_growth ×`` the trained size; the codec itself
stays frozen.

Determinism: training-sample selection, k-means init and re-seeding all
derive from ``seed``, so a given operation sequence reproduces bit-identical
codes, lists and scores.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.index.base import IndexHit, VectorIndex
from repro.index.flat import _MIN_CAPACITY
from repro.index.flat import normalize_rows as _normalize_rows
from repro.index.ivf import spherical_kmeans as _spherical_kmeans
from repro.index.postings import Postings, RowMap, build_inverted_lists, topk_hits

# Rows per encode/assignment block: bounds the temporary float matrices.
_ENCODE_BLOCK = 16384


def _lloyd_kmeans(
    X: np.ndarray, k: int, iters: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain (euclidean) Lloyd k-means; dead cells re-seed on sample points.

    The update step accumulates per-cluster sums with one ``np.bincount``
    per (low-dimensional) column — the subspaces PQ trains on have a handful
    of dimensions, where this is an order of magnitude faster than a
    scatter-add over the whole sample.
    """
    n, p = X.shape
    k = min(k, n)
    if p == 1:
        # Scalar case: quantile init is near the optimal (Lloyd–Max)
        # quantizer already, where random init needs many iterations to
        # spread 256 centroids over one dimension.
        qs = (np.arange(k, dtype=np.float64) + 0.5) / k
        centroids = np.quantile(X[:, 0], qs).reshape(-1, 1)
    else:
        init = rng.choice(n, size=k, replace=False)
        centroids = X[init].astype(np.float64)
    for _ in range(iters):
        if p == 1:
            # Sorted 1-d centroids: nearest is a bisection on the midpoints
            # (the update below keeps them sorted), not a distance matrix.
            c = np.sort(centroids[:, 0])
            centroids = c.reshape(-1, 1)
            assign = np.searchsorted((c[1:] + c[:-1]) / 2.0, X[:, 0])
        else:
            d2 = -2.0 * (X @ centroids.T) + np.einsum("ij,ij->i", centroids, centroids)
            assign = np.argmin(d2, axis=1)
        counts = np.bincount(assign, minlength=k)
        sums = np.empty_like(centroids)
        for j in range(p):
            sums[:, j] = np.bincount(assign, weights=X[:, j], minlength=k)
        empty = counts == 0
        if empty.any():
            sums[empty] = X[rng.choice(n, size=int(empty.sum()))]
            counts[empty] = 1
        centroids = sums / counts[:, None]
    return centroids


# --------------------------------------------------------------------------- #
# Codecs
# --------------------------------------------------------------------------- #
class ScalarQuantizer:
    """Per-dimension affine uint8 codec: ``x ≈ offset + scale · code``."""

    def __init__(self) -> None:
        self.offset: Optional[np.ndarray] = None  # (d,) float32, per-dim min
        self.scale: Optional[np.ndarray] = None  # (d,) float32, (max-min)/255

    @property
    def is_trained(self) -> bool:
        return self.scale is not None

    def reset(self) -> None:
        self.offset = None
        self.scale = None

    def validate_dim(self, dim: int) -> None:
        """Any dimensionality quantizes; nothing to check."""

    def code_width(self, dim: int) -> int:
        """Bytes per stored vector: one uint8 code per dimension."""
        return int(dim)

    @property
    def nbytes(self) -> int:
        """Bytes of the trained codec tables (scale + offset)."""
        if self.scale is None:
            return 0
        return int(self.scale.nbytes + self.offset.nbytes)

    def train(self, rows: np.ndarray, rng: np.random.Generator) -> None:
        """Fit per-dimension [min, max] ranges on the training rows."""
        X = np.asarray(rows, dtype=np.float64)
        lo = X.min(axis=0)
        span = X.max(axis=0) - lo
        # A constant dimension still round-trips exactly through code 0.
        span[span < 1e-9] = 1e-9
        self.offset = lo.astype(np.float32)
        self.scale = (span / 255.0).astype(np.float32)

    def encode(self, rows: np.ndarray) -> np.ndarray:
        """Quantize float rows to uint8 codes (values outside the range clip)."""
        X = np.asarray(rows, dtype=np.float64)
        q = np.rint((X - self.offset.astype(np.float64)) / self.scale.astype(np.float64))
        return np.clip(q, 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray, dtype: np.dtype = np.float32) -> np.ndarray:
        """Dequantize codes back to (approximate) float rows."""
        return codes.astype(dtype) * self.scale.astype(dtype) + self.offset.astype(dtype)

    def scores(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric float32-query × uint8-corpus dot products, ``(q, n)``.

        Uses the affine identity ``q · (offset + scale·c) =
        q·offset + (q·scale) · c`` so the per-chunk work is one cast of the
        codes plus one matmul.
        """
        scaled_q = queries * self.scale[None, :]
        return scaled_q @ codes.astype(np.float32).T + (queries @ self.offset)[:, None]

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Codec tables for the index snapshot (empty while untrained)."""
        if self.scale is None:
            return {}
        return {"sq8_scale": self.scale, "sq8_offset": self.offset}

    def restore_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Reinstate codec tables from a snapshot."""
        self.scale = np.asarray(arrays["sq8_scale"], dtype=np.float32)
        self.offset = np.asarray(arrays["sq8_offset"], dtype=np.float32)


class ProductQuantizer:
    """Per-subspace k-means codec: ``m`` uint8 centroid ids per vector."""

    def __init__(self, m: int = 16, ksub: int = 256, kmeans_iters: int = 10) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if not 2 <= ksub <= 256:
            raise ValueError("ksub must be in [2, 256] (codes are uint8)")
        if kmeans_iters < 1:
            raise ValueError("kmeans_iters must be >= 1")
        self.m = int(m)
        self.ksub = int(ksub)
        self.kmeans_iters = int(kmeans_iters)
        self.codebooks: Optional[np.ndarray] = None  # (m, ksub_eff, dsub) f32
        self.dsub: Optional[int] = None

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def reset(self) -> None:
        self.codebooks = None
        self.dsub = None

    def validate_dim(self, dim: int) -> None:
        """The subspace split must tile the vector exactly."""
        if dim % self.m != 0:
            raise ValueError(
                f"vector dim {dim} is not divisible by m={self.m} subspaces"
            )

    def code_width(self, dim: int) -> int:
        """Bytes per stored vector: one uint8 centroid id per subspace."""
        return self.m

    @property
    def nbytes(self) -> int:
        """Bytes of the trained codebooks."""
        return 0 if self.codebooks is None else int(self.codebooks.nbytes)

    def train(self, rows: np.ndarray, rng: np.random.Generator) -> None:
        """Fit one k-means codebook per subspace on the training rows."""
        X = np.asarray(rows, dtype=np.float64)
        n, d = X.shape
        self.validate_dim(d)
        self.dsub = d // self.m
        ksub = min(self.ksub, n)
        books = np.empty((self.m, ksub, self.dsub), dtype=np.float32)
        for j in range(self.m):
            sub = X[:, j * self.dsub : (j + 1) * self.dsub]
            book = _lloyd_kmeans(sub, ksub, self.kmeans_iters, rng)
            if self.dsub == 1:
                # Sorted scalar codebooks let encode() assign by bisection.
                book = np.sort(book, axis=0)
            books[j] = book
        self.codebooks = books

    def encode(self, rows: np.ndarray) -> np.ndarray:
        """Assign each sub-vector to its nearest centroid (blocked, float32)."""
        X = np.ascontiguousarray(np.atleast_2d(rows), dtype=np.float32)
        n = X.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        if self.dsub == 1:
            # Scalar subspaces: nearest sorted centroid via bisection on the
            # midpoints — O(n log ksub) instead of an (n, ksub) distance
            # matrix per subspace.
            for j in range(self.m):
                cb = self.codebooks[j][:, 0]
                mids = (cb[1:] + cb[:-1]) / 2.0
                codes[:, j] = np.searchsorted(mids, X[:, j])
            return codes
        cb_norms = np.einsum("mkd,mkd->mk", self.codebooks, self.codebooks)
        for start in range(0, n, _ENCODE_BLOCK):
            block = X[start : start + _ENCODE_BLOCK]
            for j in range(self.m):
                sub = block[:, j * self.dsub : (j + 1) * self.dsub]
                d2 = cb_norms[j][None, :] - 2.0 * (sub @ self.codebooks[j].T)
                codes[start : start + block.shape[0], j] = np.argmin(d2, axis=1)
        return codes

    def decode(self, codes: np.ndarray, dtype: np.dtype = np.float32) -> np.ndarray:
        """Reconstruct (approximate) float rows from centroid ids."""
        n = codes.shape[0]
        out = np.empty((n, self.m * self.dsub), dtype=dtype)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[j][
                codes[:, j]
            ].astype(dtype)
        return out

    def scores(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC scores ``(q, n)``: per-subspace LUT build plus gather-adds."""
        q = queries.shape[0]
        n = codes.shape[0]
        out = np.zeros((q, n), dtype=np.float32)
        for j in range(self.m):
            lut = queries[:, j * self.dsub : (j + 1) * self.dsub] @ self.codebooks[j].T
            out += lut[:, codes[:, j]]
        return out

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Codec tables for the index snapshot (empty while untrained)."""
        if self.codebooks is None:
            return {}
        return {"pq_codebooks": self.codebooks}

    def restore_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Reinstate codebooks from a snapshot."""
        self.codebooks = np.asarray(arrays["pq_codebooks"], dtype=np.float32)
        self.dsub = int(self.codebooks.shape[2])


# --------------------------------------------------------------------------- #
# The quantized index
# --------------------------------------------------------------------------- #
class QuantizedIndex(VectorIndex):
    """Shared storage + search machinery of the quantized backends.

    Not registered directly; use :class:`SQ8Index` / :class:`PQIndex` (or the
    registry names ``"sq8"``, ``"pq"``, ``"ivf+sq8"``, ``"ivf+pq"``).
    """

    def __init__(
        self,
        quantizer,
        dim: Optional[int] = None,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        min_train_size: int = 256,
        train_sample: int = 32768,
        rescore: int = 2,
        routed: bool = False,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
    ) -> None:
        if dim is not None and dim < 1:
            raise ValueError("dim must be >= 1")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if min_train_size < 2:
            raise ValueError("min_train_size must be >= 2")
        if train_sample < 2:
            raise ValueError("train_sample must be >= 2")
        if rescore < 1:
            raise ValueError("rescore must be >= 1")
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if kmeans_iters < 1:
            raise ValueError("kmeans_iters must be >= 1")
        if repartition_growth <= 1.0:
            raise ValueError("repartition_growth must be > 1")
        if dim is not None:
            quantizer.validate_dim(int(dim))
        self._quantizer = quantizer
        self._dim = dim
        self._constructor_dim = dim
        self._initial_capacity = max(int(initial_capacity), 1)
        self._chunk_size = int(chunk_size)
        self._min_train_size = int(min_train_size)
        self._train_sample = int(train_sample)
        self._rescore = int(rescore)
        self._routed = bool(routed)
        self._nlist_config = nlist
        self._nprobe = int(nprobe)
        self._kmeans_iters = int(kmeans_iters)
        self._repartition_growth = float(repartition_growth)
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._size = 0
        self._next_id = 0
        self._staging: Optional[np.ndarray] = None  # (capacity, d) f32 unit rows
        self._codes: Optional[np.ndarray] = None  # (capacity, code_width) uint8
        self._norms: Optional[np.ndarray] = None  # (capacity,) f32 original norms
        self._ids: Optional[np.ndarray] = None  # (capacity,) int64
        self._id_to_row: Dict[int, int] = {}
        self._row_of = RowMap()
        self._centroids: Optional[np.ndarray] = None  # (nlist, d) f32 unit rows
        self._lists: List[Postings] = []
        self._list_of: Dict[int, int] = {}
        self._trained_size = 0
        self._mutations_since_train = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def dim(self) -> Optional[int]:
        return self._dim

    @property
    def is_trained(self) -> bool:
        """Whether the codec exists (False → exact float32 staging scans)."""
        return self._quantizer.is_trained

    @property
    def routed(self) -> bool:
        """Whether IVF coarse routing is enabled for this instance."""
        return self._routed

    @property
    def code_width(self) -> Optional[int]:
        """Bytes of quantized payload per stored vector (None while unset)."""
        if self._dim is None:
            return None
        return int(self._quantizer.code_width(self._dim))

    @property
    def rescore(self) -> int:
        """Exact-rescore multiplier R (top-k·R candidates re-ranked in f64)."""
        return self._rescore

    @property
    def nlist(self) -> int:
        """Routing cells (0 while unrouted or untrained)."""
        return 0 if self._centroids is None else int(self._centroids.shape[0])

    @property
    def nprobe(self) -> int:
        """Cells probed per query when routed."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        if int(value) < 1:
            raise ValueError("nprobe must be >= 1")
        self._nprobe = int(value)

    @property
    def ids(self) -> List[int]:
        return [] if self._ids is None else [int(i) for i in self._ids[: self._size]]

    @property
    def nbytes(self) -> int:
        """Bytes of the live rows: codes (or float staging) + norms + ids.

        After training this is ``len(self) * (code_width + 4 + 8)`` — the
        quantized payload plus the float32 norm and int64 id columns.  The
        codec tables and routing structures are fixed overheads, reported
        separately by :attr:`codec_nbytes` / :attr:`routing_nbytes`.
        """
        if self._size == 0:
            return 0
        payload = self._codes if self._codes is not None else self._staging
        return int(
            payload[: self._size].nbytes
            + self._norms[: self._size].nbytes
            + self._ids[: self._size].nbytes
        )

    @property
    def allocated_nbytes(self) -> int:
        """Bytes actually allocated (capacity rows, not just live ones)."""
        payload = self._codes if self._codes is not None else self._staging
        if payload is None:
            return 0
        return int(payload.nbytes + self._norms.nbytes + self._ids.nbytes)

    @property
    def codec_nbytes(self) -> int:
        """Bytes of the trained codec tables (scale/offset or codebooks)."""
        return int(self._quantizer.nbytes)

    @property
    def routing_nbytes(self) -> int:
        """Bytes of the routing structures (centroids + lists + row map)."""
        total = self._row_of.nbytes + sum(p.nbytes for p in self._lists)
        if self._centroids is not None:
            total += int(self._centroids.nbytes)
        return int(total)

    def __contains__(self, id: int) -> bool:
        return int(id) in self._id_to_row

    def get(self, id: int) -> np.ndarray:
        """The stored vector for ``id``.

        Exact while the index is untrained (float staging); after training
        the reconstruction is the dequantized code times the cached norm —
        approximate by design.
        """
        row = self._id_to_row.get(int(id))
        if row is None:
            raise KeyError(f"no vector with id {id}")
        if self._codes is not None:
            unit = self._quantizer.decode(
                self._codes[row : row + 1], dtype=np.float64
            )[0]
        else:
            unit = np.asarray(self._staging[row], dtype=np.float64)
        return unit * float(self._norms[row])

    # ------------------------------------------------------------------ #
    # Capacity / dim
    # ------------------------------------------------------------------ #
    def _check_dim(self, d: int) -> None:
        if self._dim is None:
            self._quantizer.validate_dim(int(d))
            self._dim = int(d)
        elif d != self._dim:
            raise ValueError(f"vector dim {d} does not match index dim {self._dim}")

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if self._norms is None:
            capacity = max(self._initial_capacity, needed)
            if self._quantizer.is_trained:
                self._codes = np.empty(
                    (capacity, self._quantizer.code_width(self._dim)), dtype=np.uint8
                )
            else:
                self._staging = np.empty((capacity, self._dim), dtype=np.float32)
            self._norms = np.empty(capacity, dtype=np.float32)
            self._ids = np.empty(capacity, dtype=np.int64)
            return
        capacity = self._norms.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        payload = self._codes if self._codes is not None else self._staging
        grown = np.empty((capacity, payload.shape[1]), dtype=payload.dtype)
        grown[: self._size] = payload[: self._size]
        if self._codes is not None:
            self._codes = grown
        else:
            self._staging = grown
        grown_norms = np.empty(capacity, dtype=np.float32)
        grown_norms[: self._size] = self._norms[: self._size]
        self._norms = grown_norms
        grown_ids = np.empty(capacity, dtype=np.int64)
        grown_ids[: self._size] = self._ids[: self._size]
        self._ids = grown_ids

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _training_sample(self, rows: np.ndarray) -> np.ndarray:
        if rows.shape[0] > self._train_sample:
            pick = self._rng.choice(rows.shape[0], size=self._train_sample, replace=False)
            return rows[pick]
        return rows

    def _train(self) -> None:
        """Train codec (once) + routing on the staged rows, encode, drop staging."""
        rows = self._staging[: self._size]
        sample = self._training_sample(rows)
        self._quantizer.train(sample, self._rng)
        capacity = self._staging.shape[0]
        self._codes = np.empty(
            (capacity, self._quantizer.code_width(self._dim)), dtype=np.uint8
        )
        for start in range(0, self._size, _ENCODE_BLOCK):
            block = rows[start : start + _ENCODE_BLOCK]
            self._codes[start : start + block.shape[0]] = self._quantizer.encode(block)
        if self._routed:
            self._train_routing(rows, sample)
        self._staging = None
        self._trained_size = self._size
        self._mutations_since_train = 0

    def _train_routing(self, rows: np.ndarray, sample: np.ndarray) -> None:
        """(Re)fit the coarse centroids and rebuild every inverted list."""
        size = self._size
        nlist = self._nlist_config or 4 * int(math.ceil(math.sqrt(size)))
        nlist = max(1, min(nlist, sample.shape[0]))
        self._centroids = _spherical_kmeans(
            sample, nlist, self._kmeans_iters, self._rng
        )
        assign = np.argmax(rows.astype(np.float32) @ self._centroids.T, axis=1)
        self._lists, self._list_of = build_inverted_lists(
            self._ids[:size], assign, self._centroids.shape[0]
        )

    def _retrain_routing(self) -> None:
        """Re-partition from the dequantized rows (the floats are gone)."""
        rows = np.empty((self._size, self._dim), dtype=np.float32)
        for start in range(0, self._size, _ENCODE_BLOCK):
            chunk = self._codes[start : min(start + _ENCODE_BLOCK, self._size)]
            rows[start : start + chunk.shape[0]] = self._quantizer.decode(chunk)
        self._train_routing(rows, self._training_sample(rows))
        self._trained_size = self._size
        self._mutations_since_train = 0

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, vector: np.ndarray, id: Optional[int] = None) -> int:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        self._check_dim(vector.shape[0])
        if id is None:
            id = self._next_id
        id = int(id)
        if id in self._id_to_row:
            raise ValueError(f"id {id} is already in the index")
        self._next_id = max(self._next_id, id + 1)
        self._ensure_capacity(1)
        unit, norms = _normalize_rows(vector)
        row = self._size
        if self._quantizer.is_trained:
            self._codes[row] = self._quantizer.encode(unit)[0]
        else:
            self._staging[row] = unit[0]
        self._norms[row] = norms[0]
        self._ids[row] = id
        self._id_to_row[id] = row
        self._size += 1
        self._after_add(np.asarray([id], dtype=np.int64), row, unit)
        return id

    def add_batch(
        self, vectors: np.ndarray, ids: Optional[Sequence[int]] = None
    ) -> List[int]:
        V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if V.size == 0:
            return []
        self._check_dim(V.shape[1])
        n = V.shape[0]
        if ids is None:
            ids = list(range(self._next_id, self._next_id + n))
        else:
            ids = [int(i) for i in ids]
            if len(ids) != n:
                raise ValueError("ids must align with vectors")
            if len(set(ids)) != n:
                raise ValueError("ids must be unique")
            for i in ids:
                if i in self._id_to_row:
                    raise ValueError(f"id {i} is already in the index")
        self._ensure_capacity(n)
        unit, norms = _normalize_rows(V)
        start = self._size
        if self._quantizer.is_trained:
            self._codes[start : start + n] = self._quantizer.encode(unit)
        else:
            self._staging[start : start + n] = unit
        self._norms[start : start + n] = norms
        self._ids[start : start + n] = ids
        for offset, i in enumerate(ids):
            self._id_to_row[i] = start + offset
        self._size += n
        self._next_id = max(self._next_id, max(ids) + 1)
        self._after_add(np.asarray(ids, dtype=np.int64), start, unit)
        return list(ids)

    # NOTE: the incremental routing maintenance below (assign-on-add,
    # list-discard + RowMap compaction on remove, growth/churn repartition
    # trigger) deliberately parallels IVFIndex._post_add/_post_remove in
    # ivf.py — the storage models differ (codes vs float rows), but a change
    # to the threshold or compaction rule there almost certainly applies
    # here too.  The list-rebuild itself is shared (build_inverted_lists).
    def _after_add(self, ids: np.ndarray, start_row: int, unit_rows: np.ndarray) -> None:
        if self._routed:
            self._row_of.set_block(ids, start_row)
        if not self._quantizer.is_trained:
            if self._size >= self._min_train_size:
                self._train()
            return
        if self._routed and self._centroids is not None:
            assign = np.argmax(
                unit_rows.astype(np.float32) @ self._centroids.T, axis=1
            )
            for id, li in zip(ids.tolist(), assign.tolist()):
                self._lists[li].append(id)
                self._list_of[id] = li
            self._mutations_since_train += ids.shape[0]
            threshold = self._repartition_growth * self._trained_size
            if self._size >= threshold or self._mutations_since_train >= threshold:
                self._retrain_routing()

    def remove(self, id: int) -> None:
        id = int(id)
        row = self._id_to_row.pop(id, None)
        if row is None:
            raise KeyError(f"no vector with id {id}")
        payload = self._codes if self._codes is not None else self._staging
        last = self._size - 1
        moved_id: Optional[int] = None
        if row != last:
            payload[row] = payload[last]
            self._norms[row] = self._norms[last]
            moved_id = int(self._ids[last])
            self._ids[row] = moved_id
            self._id_to_row[moved_id] = row
        self._size -= 1
        if self._routed:
            self._row_of.unset(id)
            if moved_id is not None:
                self._row_of.move(moved_id, row)
            if self._row_of.compaction_due(self._size):
                self._row_of.maybe_compact(self._ids[: self._size])
            if self._centroids is not None:
                li = self._list_of.pop(id)
                self._lists[li].discard(id)
                self._mutations_since_train += 1

    def rebuild(self, vectors: np.ndarray, ids: Sequence[int]) -> None:
        ids = [int(i) for i in ids]
        V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if not ids:
            if V.size != 0:
                raise ValueError("ids must align with vectors")
            self.clear(reset_ids=False)
            return
        if V.shape[0] != len(ids):
            raise ValueError("ids must align with vectors")
        if self._constructor_dim is not None and V.shape[1] != self._constructor_dim:
            raise ValueError(
                f"vector dim {V.shape[1]} does not match index dim "
                f"{self._constructor_dim}"
            )
        self.clear(reset_ids=False)
        self._check_dim(int(V.shape[1]))
        self.add_batch(V, ids=ids)

    def clear(self, reset_ids: bool = True) -> None:
        self._size = 0
        self._staging = None
        self._codes = None
        self._norms = None
        self._ids = None
        self._id_to_row.clear()
        self._quantizer.reset()
        self._row_of.clear()
        self._centroids = None
        self._lists = []
        self._list_of = {}
        self._trained_size = 0
        self._mutations_since_train = 0
        self._dim = self._constructor_dim
        if reset_ids:
            self._next_id = 0

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _rank(
        self,
        cand_rows: np.ndarray,
        cand_scores: np.ndarray,
        query64: np.ndarray,
        top_k: int,
        score_threshold: Optional[float],
    ) -> List[IndexHit]:
        """Final ranking of one query's candidates, with optional rescore.

        With ``rescore > 1`` the ``top_k·rescore`` best candidates by
        quantized score are re-scored in float64 against the dequantized
        codes before the final top-k cut.
        """
        n = cand_scores.shape[0]
        if self._rescore > 1 and self._codes is not None:
            keff = min(top_k * self._rescore, n)
            if keff < n:
                keep = np.argpartition(-cand_scores, kth=keff - 1)[:keff]
                cand_rows = cand_rows[keep]
                cand_scores = cand_scores[keep]
            decoded = self._quantizer.decode(self._codes[cand_rows], dtype=np.float64)
            cand_scores = decoded @ query64
        return topk_hits(
            self._ids[cand_rows], cand_scores, top_k, score_threshold
        )

    def search(
        self,
        queries: np.ndarray,
        top_k: int = 5,
        score_threshold: Optional[float] = None,
    ) -> List[List[IndexHit]]:
        """Batched top-k cosine search over the quantized rows.

        Untrained: exact float32 scan of the staging buffer.  Trained,
        unrouted: chunked quantized scoring of every code row.  Trained and
        routed: the ``nprobe`` nearest cells' lists only.  Scores are cosine
        similarities up to the codec's reconstruction error (see the module
        docstring); ``score_threshold`` filters on those scores.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = Q.shape[0]
        if self._size == 0:
            return [[] for _ in range(n_queries)]
        if Q.shape[1] != self._dim:
            raise ValueError(f"query dim {Q.shape[1]} != index dim {self._dim}")
        unit, _ = _normalize_rows(Q)
        Qf = np.ascontiguousarray(unit, dtype=np.float32)

        if not self._quantizer.is_trained:
            # Staging phase is bounded by min_train_size: one matmul is fine.
            scores = Qf @ self._staging[: self._size].T
            return [
                topk_hits(
                    self._ids[: self._size], scores[qi], top_k, score_threshold
                )
                for qi in range(n_queries)
            ]

        if self._routed and self._centroids is not None:
            return self._search_routed(Qf, unit, top_k, score_threshold)

        # Flat quantized scan, chunked to bound the (q, chunk) score matrix.
        keff = min(max(top_k * self._rescore, top_k), self._size)
        chunk_rows: List[np.ndarray] = []
        chunk_scores: List[np.ndarray] = []
        for start in range(0, self._size, self._chunk_size):
            stop = min(start + self._chunk_size, self._size)
            S = self._quantizer.scores(Qf, self._codes[start:stop])
            c = stop - start
            kk = min(keff, c)
            if kk < c:
                idx = np.argpartition(-S, kth=kk - 1, axis=1)[:, :kk]
                chunk_scores.append(np.take_along_axis(S, idx, axis=1))
                chunk_rows.append(idx + start)
            else:
                chunk_scores.append(S)
                chunk_rows.append(
                    np.broadcast_to(np.arange(start, stop), (n_queries, c))
                )
        rows = np.concatenate(chunk_rows, axis=1)
        scores = np.concatenate(chunk_scores, axis=1)
        return [
            self._rank(rows[qi], scores[qi], unit[qi], top_k, score_threshold)
            for qi in range(n_queries)
        ]

    def _search_routed(
        self,
        Qf: np.ndarray,
        unit64: np.ndarray,
        top_k: int,
        score_threshold: Optional[float],
    ) -> List[List[IndexHit]]:
        """Probe the ``nprobe`` nearest cells and rank their lists' codes."""
        n_queries = Qf.shape[0]
        nlist = self._centroids.shape[0]
        nprobe = min(self._nprobe, nlist)
        centroid_scores = Qf @ self._centroids.T
        if nprobe < nlist:
            probes = np.argpartition(-centroid_scores, kth=nprobe - 1, axis=1)[
                :, :nprobe
            ]
        else:
            probes = np.broadcast_to(np.arange(nlist), (n_queries, nlist))
        results: List[List[IndexHit]] = []
        for qi in range(n_queries):
            chunks = [
                self._lists[li].view() for li in probes[qi] if len(self._lists[li])
            ]
            if not chunks:
                results.append([])
                continue
            cand_ids = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            rows = self._row_of.rows(cand_ids)
            scores = self._quantizer.scores(Qf[qi : qi + 1], self._codes[rows])[0]
            results.append(
                self._rank(rows, scores, unit64[qi], top_k, score_threshold)
            )
        return results

    # ------------------------------------------------------------------ #
    # Snapshot protocol (see repro.index.snapshot)
    # ------------------------------------------------------------------ #
    @property
    def snapshot_backend(self) -> Optional[str]:
        # Concrete subclasses name their registered backend; the shared base
        # is not registered, so per the VectorIndex contract it reports no
        # snapshot support (save() then raises SnapshotError).
        return None

    def _snapshot_common_params(self) -> Dict[str, object]:
        return {
            "dim": self._constructor_dim,
            "initial_capacity": self._initial_capacity,
            "chunk_size": self._chunk_size,
            "min_train_size": self._min_train_size,
            "train_sample": self._train_sample,
            "rescore": self._rescore,
            "routed": self._routed,
            "nlist": self._nlist_config,
            "nprobe": self._nprobe,
            "kmeans_iters": self._kmeans_iters,
            "repartition_growth": self._repartition_growth,
            "seed": self._seed,
        }

    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "dim": self._dim,
            "next_id": self._next_id,
            "trained": bool(self._quantizer.is_trained),
            "trained_size": self._trained_size,
            "mutations_since_train": self._mutations_since_train,
            "rng_state": self._rng.bit_generator.state,
        }

    def _snapshot_arrays(self) -> Dict[str, np.ndarray]:
        n = self._size
        d = self._dim or 0
        arrays: Dict[str, np.ndarray] = {
            "ids": self._ids[:n] if self._ids is not None else np.zeros(0, np.int64),
            "norms": (
                self._norms[:n] if self._norms is not None else np.zeros(0, np.float32)
            ),
        }
        if self._quantizer.is_trained:
            # A trained index drained to empty (or loaded from such a
            # snapshot) has no codes matrix allocated yet.
            code_width = self._quantizer.code_width(self._dim) if self._dim else 0
            arrays["codes"] = (
                self._codes[:n]
                if self._codes is not None
                else np.zeros((0, code_width), dtype=np.uint8)
            )
            arrays.update(self._quantizer.snapshot_arrays())
            if self._routed and self._centroids is not None:
                arrays["rt_centroids"] = self._centroids
                live_ids = (
                    self._ids[:n] if self._ids is not None else np.zeros(0, np.int64)
                )
                arrays["rt_assign"] = np.asarray(
                    [self._list_of[int(i)] for i in live_ids], dtype=np.int64
                )
        else:
            arrays["staging"] = (
                self._staging[:n]
                if self._staging is not None
                else np.zeros((0, d), np.float32)
            )
        return arrays

    def _restore(self, state: Mapping[str, object], arrays: Mapping[str, np.ndarray]) -> None:
        self.clear(reset_ids=True)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        norms = np.asarray(arrays["norms"], dtype=np.float32)
        n = int(ids.shape[0])
        if state["dim"] is not None:
            self._quantizer.validate_dim(int(state["dim"]))
            self._dim = int(state["dim"])
        if bool(state["trained"]):
            self._quantizer.restore_arrays(arrays)
        if n:
            self._ensure_capacity(n)
            payload = self._codes if self._codes is not None else self._staging
            source = arrays["codes"] if self._codes is not None else arrays["staging"]
            payload[:n] = np.asarray(source, dtype=payload.dtype)
            self._norms[:n] = norms
            self._ids[:n] = ids
            self._id_to_row = {int(i): r for r, i in enumerate(ids.tolist())}
            self._size = n
            if self._routed:
                self._row_of.set_block(ids, 0)
        if self._routed and "rt_centroids" in arrays:
            self._centroids = np.ascontiguousarray(
                arrays["rt_centroids"], dtype=np.float32
            )
            assign = np.asarray(arrays["rt_assign"], dtype=np.int64)
            self._lists, self._list_of = build_inverted_lists(
                ids, assign, self._centroids.shape[0]
            )
        self._next_id = int(state["next_id"])
        self._trained_size = int(state["trained_size"])
        self._mutations_since_train = int(state["mutations_since_train"])
        rng_state = state.get("rng_state")
        if rng_state is not None:
            rng = np.random.default_rng(self._seed)
            rng.bit_generator.state = rng_state
            self._rng = rng


class SQ8Index(QuantizedIndex):
    """Int8 scalar-quantized cosine index (≈3.5x smaller rows than flat).

    Parameters beyond the storage/training knobs shared with
    :class:`QuantizedIndex`:

    rescore:
        Exact-rescore multiplier R — each query's ``top_k·R`` best
        candidates by quantized score are re-ranked in float64 against the
        dequantized codes (1 disables).
    routed, nlist, nprobe:
        Enable IVF coarse routing over the quantized rows (the registry's
        ``"ivf+sq8"``).
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        min_train_size: int = 256,
        train_sample: int = 32768,
        rescore: int = 2,
        routed: bool = False,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
    ) -> None:
        super().__init__(
            ScalarQuantizer(),
            dim=dim,
            initial_capacity=initial_capacity,
            chunk_size=chunk_size,
            min_train_size=min_train_size,
            train_sample=train_sample,
            rescore=rescore,
            routed=routed,
            nlist=nlist,
            nprobe=nprobe,
            kmeans_iters=kmeans_iters,
            repartition_growth=repartition_growth,
            seed=seed,
        )

    @property
    def snapshot_backend(self) -> str:
        return "ivf+sq8" if self._routed else "sq8"

    def _snapshot_params(self) -> Dict[str, object]:
        return self._snapshot_common_params()


class PQIndex(QuantizedIndex):
    """Product-quantized cosine index (``m`` bytes per vector, ADC scoring).

    Parameters beyond the shared knobs:

    m:
        Subspaces (codes per vector).  ``dim`` must be divisible by ``m``;
        smaller sub-dimensions quantize more finely (``m=dim`` degenerates
        to per-dimension non-uniform scalar quantization).
    ksub:
        Centroids per subspace (≤ 256 so one code fits a uint8).
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        m: int = 16,
        ksub: int = 256,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        min_train_size: int = 256,
        train_sample: int = 32768,
        rescore: int = 2,
        routed: bool = False,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
    ) -> None:
        super().__init__(
            ProductQuantizer(m=m, ksub=ksub, kmeans_iters=max(kmeans_iters, 1)),
            dim=dim,
            initial_capacity=initial_capacity,
            chunk_size=chunk_size,
            min_train_size=min_train_size,
            train_sample=train_sample,
            rescore=rescore,
            routed=routed,
            nlist=nlist,
            nprobe=nprobe,
            kmeans_iters=kmeans_iters,
            repartition_growth=repartition_growth,
            seed=seed,
        )
        self._m = int(m)
        self._ksub = int(ksub)

    @property
    def m(self) -> int:
        """Number of subspaces (codes per vector)."""
        return self._m

    @property
    def ksub(self) -> int:
        """Centroids per subspace."""
        return self._ksub

    @property
    def snapshot_backend(self) -> str:
        return "ivf+pq" if self._routed else "pq"

    def _snapshot_params(self) -> Dict[str, object]:
        params = self._snapshot_common_params()
        params["m"] = self._m
        params["ksub"] = self._ksub
        return params
