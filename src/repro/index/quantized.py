"""Quantized storage backends: int8 scalar quantization and product quantization.

The exact backends keep every embedding as ``d`` float32 values; at the
paper's fleet scale (millions of per-device caches) the embedding matrix is
the cache's dominant memory cost.  The two backends here trade a small amount
of score precision for a 3.5–10x smaller per-entry footprint:

* :class:`SQ8Index` — per-dimension affine **scalar quantization** to one
  uint8 code per dimension.  Ranges are learned per dimension from the first
  ``min_train_size`` vectors (the train set), so the 256 levels cover the
  span the data actually occupies rather than the theoretical [-1, 1] of a
  unit vector.  Scoring is asymmetric: the query stays float32 and is scored
  against the dequantized corpus chunk-by-chunk, so no query-side precision
  is lost.
* :class:`PQIndex` — **product quantization** (Jégou et al., PAMI 2011): the
  vector is split into ``m`` subspaces, each quantized to the id of its
  nearest per-subspace k-means centroid (one uint8 each).  A query is scored
  with ADC (asymmetric distance computation): one ``(m, ksub)`` lookup table
  of query-sub-vector × centroid dot products per query, after which each
  stored vector's score is ``m`` table lookups — no per-entry float math.

Both backends share the flat storage discipline (contiguous code matrix,
amortized-O(1) appends via capacity doubling, O(code_width) swap-with-last
deletes, id-centric API) and train lazily like :class:`~repro.index.IVFIndex`:
below ``min_train_size`` vectors are staged in float32 and searched exactly;
the first add reaching the threshold trains the quantizer, encodes the
staged rows and drops the float staging buffer.  The quantizer is trained
once and then frozen (the standard faiss contract); ``clear``/``rebuild``
reset it.

Optional **exact re-ranking**: with ``rescore > 1`` a search first selects
``top_k · rescore`` candidates by the fast quantized scores, then recomputes
those candidates' scores in float64 against the dequantized codes and ranks
the final ``top_k`` from that — tightening the ordering at a per-query cost
proportional to ``top_k · rescore`` instead of ``n``.

Optional **IVF routing** (``routed=True``, registered as ``"ivf+sq8"`` /
``"ivf+pq"``): the same spherical-k-means coarse quantizer as
:class:`~repro.index.IVFIndex` is trained alongside the codec, so a query
scans only the ``nprobe`` nearest cells' codes — compounding the memory win
with sublinear lookups.  Routing retrains (from the *dequantized* rows — the
float originals are gone by design) when size or churn since the last
training passes ``repartition_growth ×`` the trained size; the codec itself
stays frozen.

Determinism: training-sample selection, k-means init and re-seeding all
derive from ``seed``, so a given operation sequence reproduces bit-identical
codes, lists and scores.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.index.base import IndexHit, VectorIndex
from repro.index.flat import _MIN_CAPACITY
from repro.index.flat import normalize_rows as _normalize_rows
from repro.index.ivf import _ASSIGN_BLOCK_ELEMS
from repro.index.ivf import sorted_probes as _sorted_probes
from repro.index.ivf import spherical_kmeans as _spherical_kmeans
from repro.index.postings import (
    Postings,
    RowMap,
    ScratchBuffers,
    build_inverted_lists,
    cell_bounds,
    det_topk,
    probe_scan,
    probe_scan_batched,
    probe_scan_threaded,
    topk_hits,
)

# Rows per encode/assignment block: bounds the temporary float matrices.
_ENCODE_BLOCK = 16384
# Code rows per uint8→float32 cast block in the fused SQ8 scan: large enough
# to amortize the gemm call, small enough that the cast buffer stays resident
# in cache (and well under the mmap threshold for fresh allocations).
_SCAN_BLOCK = 4096
# Rows per gather+cast+gemv block when scoring a scattered row subset (the
# routed probe scan): the gathered uint8 block (128KB) and its float32 cast
# (512KB) both stay L2-resident between the write and the gemv read, which
# measures ~1.4x faster than a single whole-candidate-set pass at 10^6.
_GATHER_BLOCK = 2048
# Query-batch ceiling for the latency-engineered flat scan (per-query LUTs,
# deterministic per-chunk selection, early stop).  Larger batches take the
# batched-throughput gemm path, whose per-query cost is already amortized.
_MIRROR_MAX_BATCH = 4


def _lloyd_kmeans(
    X: np.ndarray, k: int, iters: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain (euclidean) Lloyd k-means; dead cells re-seed on sample points.

    The update step accumulates per-cluster sums with one ``np.bincount``
    per (low-dimensional) column — the subspaces PQ trains on have a handful
    of dimensions, where this is an order of magnitude faster than a
    scatter-add over the whole sample.
    """
    n, p = X.shape
    k = min(k, n)
    if p == 1:
        # Scalar case: quantile init is near the optimal (Lloyd–Max)
        # quantizer already, where random init needs many iterations to
        # spread 256 centroids over one dimension.
        qs = (np.arange(k, dtype=np.float64) + 0.5) / k
        centroids = np.quantile(X[:, 0], qs).reshape(-1, 1)
    else:
        init = rng.choice(n, size=k, replace=False)
        centroids = X[init].astype(np.float64)
    for _ in range(iters):
        if p == 1:
            # Sorted 1-d centroids: nearest is a bisection on the midpoints
            # (the update below keeps them sorted), not a distance matrix.
            c = np.sort(centroids[:, 0])
            centroids = c.reshape(-1, 1)
            assign = np.searchsorted((c[1:] + c[:-1]) / 2.0, X[:, 0])
        else:
            d2 = -2.0 * (X @ centroids.T) + np.einsum("ij,ij->i", centroids, centroids)
            assign = np.argmin(d2, axis=1)
        counts = np.bincount(assign, minlength=k)
        sums = np.empty_like(centroids)
        for j in range(p):
            sums[:, j] = np.bincount(assign, weights=X[:, j], minlength=k)
        empty = counts == 0
        if empty.any():
            sums[empty] = X[rng.choice(n, size=int(empty.sum()))]
            counts[empty] = 1
        centroids = sums / counts[:, None]
    return centroids


# --------------------------------------------------------------------------- #
# Codecs
# --------------------------------------------------------------------------- #
class ScalarQuantizer:
    """Per-dimension affine uint8 codec: ``x ≈ offset + scale · code``."""

    def __init__(self) -> None:
        self.offset: Optional[np.ndarray] = None  # (d,) float32, per-dim min
        self.scale: Optional[np.ndarray] = None  # (d,) float32, (max-min)/255

    @property
    def is_trained(self) -> bool:
        return self.scale is not None

    def reset(self) -> None:
        self.offset = None
        self.scale = None

    def validate_dim(self, dim: int) -> None:
        """Any dimensionality quantizes; nothing to check."""

    def code_width(self, dim: int) -> int:
        """Bytes per stored vector: one uint8 code per dimension."""
        return int(dim)

    @property
    def nbytes(self) -> int:
        """Bytes of the trained codec tables (scale + offset)."""
        if self.scale is None:
            return 0
        return int(self.scale.nbytes + self.offset.nbytes)

    def train(self, rows: np.ndarray, rng: np.random.Generator) -> None:
        """Fit per-dimension [min, max] ranges on the training rows."""
        X = np.asarray(rows, dtype=np.float64)
        lo = X.min(axis=0)
        span = X.max(axis=0) - lo
        # A constant dimension still round-trips exactly through code 0.
        span[span < 1e-9] = 1e-9
        self.offset = lo.astype(np.float32)
        self.scale = (span / 255.0).astype(np.float32)

    def encode(self, rows: np.ndarray) -> np.ndarray:
        """Quantize float rows to uint8 codes (values outside the range clip)."""
        X = np.asarray(rows, dtype=np.float64)
        q = np.rint((X - self.offset.astype(np.float64)) / self.scale.astype(np.float64))
        return np.clip(q, 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray, dtype: np.dtype = np.float32) -> np.ndarray:
        """Dequantize codes back to (approximate) float rows."""
        return codes.astype(dtype) * self.scale.astype(dtype) + self.offset.astype(dtype)

    def scores(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric float32-query × uint8-corpus dot products, ``(q, n)``.

        Uses the affine identity ``q · (offset + scale·c) =
        q·offset + (q·scale) · c`` so the per-chunk work is one cast of the
        codes plus one matmul.
        """
        scaled_q = queries * self.scale[None, :]
        return scaled_q @ codes.astype(np.float32).T + (queries @ self.offset)[:, None]

    def scores_fused(
        self, queries: np.ndarray, codes: np.ndarray, out: np.ndarray, scratch
    ) -> np.ndarray:
        """Single-pass fused variant of :meth:`scores`, written into ``out``.

        Same affine identity, but the uint8→float32 cast happens in
        ``_SCAN_BLOCK``-row blocks reused from ``scratch`` and every
        intermediate (scaled query, query·offset, cast block) lives in
        scratch too — no chunk-sized float matrix is ever materialized and
        nothing query- or chunk-shaped is allocated per call.
        """
        q, d = queries.shape
        n = codes.shape[0]
        scaled_q = scratch.get("sq8.scaled_q", (q, d), np.float32)
        np.multiply(queries, self.scale[None, :], out=scaled_q)
        q_off = scratch.get("sq8.q_off", (q,), np.float32)
        np.matmul(queries, self.offset, out=q_off)
        block = scratch.get("sq8.cast", (min(_SCAN_BLOCK, n), d), np.float32)
        for start in range(0, n, _SCAN_BLOCK):
            stop = min(start + _SCAN_BLOCK, n)
            b = block[: stop - start]
            np.copyto(b, codes[start:stop], casting="unsafe")
            np.matmul(scaled_q, b.T, out=out[:, start:stop])
        np.add(out, q_off[:, None], out=out)
        return out

    def score_rows_fused(
        self,
        codes: np.ndarray,
        rows: np.ndarray,
        scaled_q: np.ndarray,
        q_off: float,
        out: np.ndarray,
        scratch,
        key: str,
    ) -> None:
        """Fused scoring of a gathered row subset (the routed probe scan).

        ``rows`` are gathered from ``codes`` into a scratch uint8 block,
        cast and scored with a gemv per ``_SCAN_BLOCK`` rows — the decoded
        float matrix of the old path never exists, and the cast block stays
        cache-resident between its write (cast) and read (gemv) instead of
        making two full-DRAM passes over the candidate set.
        """
        c = rows.shape[0]
        d = codes.shape[1]
        gathered = scratch.get(key + ".gather", (min(_GATHER_BLOCK, c), d), np.uint8)
        cast = scratch.get(key + ".cast", (min(_GATHER_BLOCK, c), d), np.float32)
        for start in range(0, c, _GATHER_BLOCK):
            stop = min(start + _GATHER_BLOCK, c)
            g = gathered[: stop - start]
            codes.take(rows[start:stop], axis=0, out=g)
            b = cast[: stop - start]
            np.copyto(b, g, casting="unsafe")
            np.matmul(b, scaled_q, out=out[start:stop])
        np.add(out, q_off, out=out)

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Codec tables for the index snapshot (empty while untrained)."""
        if self.scale is None:
            return {}
        return {"sq8_scale": self.scale, "sq8_offset": self.offset}

    def restore_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Reinstate codec tables from a snapshot."""
        self.scale = np.asarray(arrays["sq8_scale"], dtype=np.float32)
        self.offset = np.asarray(arrays["sq8_offset"], dtype=np.float32)


class ProductQuantizer:
    """Per-subspace k-means codec: ``m`` uint8 centroid ids per vector."""

    def __init__(self, m: int = 16, ksub: int = 256, kmeans_iters: int = 10) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if not 2 <= ksub <= 256:
            raise ValueError("ksub must be in [2, 256] (codes are uint8)")
        if kmeans_iters < 1:
            raise ValueError("kmeans_iters must be >= 1")
        self.m = int(m)
        self.ksub = int(ksub)
        self.kmeans_iters = int(kmeans_iters)
        self.codebooks: Optional[np.ndarray] = None  # (m, ksub_eff, dsub) f32
        self.dsub: Optional[int] = None

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    @property
    def ksub_eff(self) -> int:
        """Trained centroids per subspace (< ksub when the train set was small)."""
        return 0 if self.codebooks is None else int(self.codebooks.shape[1])

    def reset(self) -> None:
        self.codebooks = None
        self.dsub = None

    def validate_dim(self, dim: int) -> None:
        """The subspace split must tile the vector exactly."""
        if dim % self.m != 0:
            raise ValueError(
                f"vector dim {dim} is not divisible by m={self.m} subspaces"
            )

    def code_width(self, dim: int) -> int:
        """Bytes per stored vector: one uint8 centroid id per subspace."""
        return self.m

    @property
    def nbytes(self) -> int:
        """Bytes of the trained codebooks."""
        return 0 if self.codebooks is None else int(self.codebooks.nbytes)

    def train(self, rows: np.ndarray, rng: np.random.Generator) -> None:
        """Fit one k-means codebook per subspace on the training rows."""
        X = np.asarray(rows, dtype=np.float64)
        n, d = X.shape
        self.validate_dim(d)
        self.dsub = d // self.m
        ksub = min(self.ksub, n)
        books = np.empty((self.m, ksub, self.dsub), dtype=np.float32)
        for j in range(self.m):
            sub = X[:, j * self.dsub : (j + 1) * self.dsub]
            book = _lloyd_kmeans(sub, ksub, self.kmeans_iters, rng)
            if self.dsub == 1:
                # Sorted scalar codebooks let encode() assign by bisection.
                book = np.sort(book, axis=0)
            books[j] = book
        self.codebooks = books

    def encode(self, rows: np.ndarray) -> np.ndarray:
        """Assign each sub-vector to its nearest centroid (blocked, float32)."""
        X = np.ascontiguousarray(np.atleast_2d(rows), dtype=np.float32)
        n = X.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        if self.dsub == 1:
            # Scalar subspaces: nearest sorted centroid via bisection on the
            # midpoints — O(n log ksub) instead of an (n, ksub) distance
            # matrix per subspace.
            for j in range(self.m):
                cb = self.codebooks[j][:, 0]
                mids = (cb[1:] + cb[:-1]) / 2.0
                codes[:, j] = np.searchsorted(mids, X[:, j])
            return codes
        cb_norms = np.einsum("mkd,mkd->mk", self.codebooks, self.codebooks)
        for start in range(0, n, _ENCODE_BLOCK):
            block = X[start : start + _ENCODE_BLOCK]
            for j in range(self.m):
                sub = block[:, j * self.dsub : (j + 1) * self.dsub]
                d2 = cb_norms[j][None, :] - 2.0 * (sub @ self.codebooks[j].T)
                codes[start : start + block.shape[0], j] = np.argmin(d2, axis=1)
        return codes

    def decode(self, codes: np.ndarray, dtype: np.dtype = np.float32) -> np.ndarray:
        """Reconstruct (approximate) float rows from centroid ids."""
        n = codes.shape[0]
        out = np.empty((n, self.m * self.dsub), dtype=dtype)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = self.codebooks[j][
                codes[:, j]
            ].astype(dtype)
        return out

    def scores(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC scores ``(q, n)``: per-subspace LUT build plus gather-adds."""
        q = queries.shape[0]
        n = codes.shape[0]
        out = np.zeros((q, n), dtype=np.float32)
        for j in range(self.m):
            lut = queries[:, j * self.dsub : (j + 1) * self.dsub] @ self.codebooks[j].T
            out += lut[:, codes[:, j]]
        return out

    def build_lut(self, query: np.ndarray, out: np.ndarray) -> np.ndarray:
        """One query's per-subspace ADC table, written into ``out`` (m, ksub_eff)."""
        for j in range(self.m):
            np.matmul(
                self.codebooks[j], query[j * self.dsub : (j + 1) * self.dsub], out=out[j]
            )
        return out

    def build_pair_lut(self, lut: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Fuse adjacent subspace tables into ``m/2`` pair tables.

        ``out[p][c0 + k·c1] = lut[2p][c0] + lut[2p+1][c1]`` with
        ``k = ksub_eff`` — exactly the packing of the index's pair-code
        mirror, so a pair of stored codes scores with ONE table gather
        instead of two.  ``out`` is ``(m//2, k·k)`` float32.
        """
        k = lut.shape[1]
        for p in range(self.m // 2):
            np.add(
                lut[2 * p][None, :], lut[2 * p + 1][:, None], out=out[p].reshape(k, k)
            )
        return out

    def scores_fused_pairs(
        self,
        pair_lut: np.ndarray,
        mirror_cols: np.ndarray,
        out: np.ndarray,
        tmp: np.ndarray,
    ) -> np.ndarray:
        """Single-query fused ADC over the pair-packed code mirror.

        ``mirror_cols`` is an ``(m//2, c)`` slice of the index's uint16 pair
        mirror; each of the ``m/2`` gathers reads one contiguous mirror row —
        half the table lookups of :meth:`scores` and no ``(q, c)`` per-table
        gather matrices.
        """
        np.take(pair_lut[0], mirror_cols[0], out=out)
        for p in range(1, mirror_cols.shape[0]):
            np.take(pair_lut[p], mirror_cols[p], out=tmp)
            np.add(out, tmp, out=out)
        return out

    def score_rows_lut(
        self,
        codes: np.ndarray,
        rows: np.ndarray,
        lut: np.ndarray,
        out: np.ndarray,
        scratch,
        key: str,
    ) -> None:
        """LUT scoring of a gathered row subset (the routed probe scan)."""
        c = rows.shape[0]
        gathered = scratch.get(key + ".gather", (c, codes.shape[1]), np.uint8)
        codes.take(rows, axis=0, out=gathered)
        tmp = scratch.get(key + ".tmp", (c,), np.float32)
        np.take(lut[0], gathered[:, 0], out=out)
        for j in range(1, self.m):
            np.take(lut[j], gathered[:, j], out=tmp)
            np.add(out, tmp, out=out)

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Codec tables for the index snapshot (empty while untrained)."""
        if self.codebooks is None:
            return {}
        return {"pq_codebooks": self.codebooks}

    def restore_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Reinstate codebooks from a snapshot."""
        self.codebooks = np.asarray(arrays["pq_codebooks"], dtype=np.float32)
        self.dsub = int(self.codebooks.shape[2])


# --------------------------------------------------------------------------- #
# The quantized index
# --------------------------------------------------------------------------- #
class QuantizedIndex(VectorIndex):
    """Shared storage + search machinery of the quantized backends.

    Not registered directly; use :class:`SQ8Index` / :class:`PQIndex` (or the
    registry names ``"sq8"``, ``"pq"``, ``"ivf+sq8"``, ``"ivf+pq"``).
    """

    def __init__(
        self,
        quantizer,
        dim: Optional[int] = None,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        min_train_size: int = 256,
        train_sample: int = 32768,
        rescore: int = 2,
        routed: bool = False,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
        fused_scan: bool = True,
        auto_repartition: bool = True,
        prune_probes: bool = True,
        scan_threads: int = 1,
    ) -> None:
        if dim is not None and dim < 1:
            raise ValueError("dim must be >= 1")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if min_train_size < 2:
            raise ValueError("min_train_size must be >= 2")
        if train_sample < 2:
            raise ValueError("train_sample must be >= 2")
        if rescore < 1:
            raise ValueError("rescore must be >= 1")
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if kmeans_iters < 1:
            raise ValueError("kmeans_iters must be >= 1")
        if repartition_growth <= 1.0:
            raise ValueError("repartition_growth must be > 1")
        if scan_threads < 1:
            raise ValueError("scan_threads must be >= 1")
        if dim is not None:
            quantizer.validate_dim(int(dim))
        self._quantizer = quantizer
        self._dim = dim
        self._constructor_dim = dim
        self._initial_capacity = max(int(initial_capacity), 1)
        self._chunk_size = int(chunk_size)
        self._min_train_size = int(min_train_size)
        self._train_sample = int(train_sample)
        self._rescore = int(rescore)
        self._routed = bool(routed)
        self._nlist_config = nlist
        self._nprobe = int(nprobe)
        self._kmeans_iters = int(kmeans_iters)
        self._repartition_growth = float(repartition_growth)
        self._seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._size = 0
        self._next_id = 0
        self._staging: Optional[np.ndarray] = None  # (capacity, d) f32 unit rows
        self._codes: Optional[np.ndarray] = None  # (capacity, code_width) uint8
        self._norms: Optional[np.ndarray] = None  # (capacity,) f32 original norms
        self._ids: Optional[np.ndarray] = None  # (capacity,) int64
        # id -> row map, built lazily (None after an mmap-backed restore so a
        # zero-copy warm start pays no O(n) python loop up front).
        self._id_map: Optional[Dict[int, int]] = {}
        # True while the code/staging matrix is an adopted read-only memmap
        # from load_index(mmap=True); mutations materialize a copy first.
        self._mmap_backed = False
        self._row_of = RowMap()
        self._centroids: Optional[np.ndarray] = None  # (nlist, d) f32 unit rows
        self._lists: List[Postings] = []
        self._list_of: Dict[int, int] = {}
        self._trained_size = 0
        self._mutations_since_train = 0
        # Latency engineering state (see the IVFIndex counterparts): fused
        # single-pass scans vs the decode-to-float64 reference path, deferred
        # repartitioning behind maintenance(), exact-bound probe pruning, the
        # optional thread-parallel probe scan, reused scratch buffers, and —
        # for even-m PQ — a column-major uint16 pair-code mirror of the code
        # matrix that halves ADC gathers on the single-query path.
        self._fused_scan = bool(fused_scan)
        self._auto_repartition = bool(auto_repartition)
        self._repartition_due = False
        self._prune_probes = bool(prune_probes)
        self._scan_threads = int(scan_threads)
        self._scratch = ScratchBuffers()
        self._pair_mirror: Optional[np.ndarray] = None  # (m//2, capacity) u16
        self._cell_stats: "Optional[tuple]" = None
        self._layout_clustered = False  # rows grouped cell-major on disk?
        self._scan_stats: Dict[str, int] = {
            "probes_scanned": 0,
            "probes_pruned": 0,
            "rows_scanned": 0,
            "early_stops": 0,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def _id_to_row(self) -> Dict[int, int]:
        """The id -> storage-row map, built on first id-keyed access."""
        if self._id_map is None:
            ids = self._ids[: self._size] if self._ids is not None else ()
            self._id_map = {int(i): r for r, i in enumerate(np.asarray(ids).tolist())}
        return self._id_map

    @property
    def mmap_backed(self) -> bool:
        """True while storage is a read-only memory map (zero-copy restore)."""
        return self._mmap_backed

    def _materialize(self) -> None:
        """Replace mmap-backed storage with a private in-memory copy.

        The mapped arrays from ``load_index(mmap=True)`` are read-only and
        shared with the snapshot file; the first mutation pays one copy and
        every later mutation is the usual in-place path.
        """
        if not self._mmap_backed:
            return
        if self._codes is not None:
            self._codes = np.array(self._codes)
        if self._staging is not None:
            self._staging = np.array(self._staging)
        self._norms = np.array(self._norms)
        self._ids = np.array(self._ids)
        self._mmap_backed = False

    def __len__(self) -> int:
        return self._size

    @property
    def dim(self) -> Optional[int]:
        return self._dim

    @property
    def is_trained(self) -> bool:
        """Whether the codec exists (False → exact float32 staging scans)."""
        return self._quantizer.is_trained

    @property
    def routed(self) -> bool:
        """Whether IVF coarse routing is enabled for this instance."""
        return self._routed

    @property
    def code_width(self) -> Optional[int]:
        """Bytes of quantized payload per stored vector (None while unset)."""
        if self._dim is None:
            return None
        return int(self._quantizer.code_width(self._dim))

    @property
    def rescore(self) -> int:
        """Exact-rescore multiplier R (top-k·R candidates re-ranked in f64)."""
        return self._rescore

    @property
    def fused_scan(self) -> bool:
        """Whether searches use the fused single-pass ADC scans.

        Settable on a live index — the scan-acceleration structures are
        maintained regardless of the flag, so flipping it switches between
        the fused path and the decode-to-float reference path in place.
        The latency benchmark relies on this to A/B both paths against the
        exact same index state.
        """
        return self._fused_scan

    @fused_scan.setter
    def fused_scan(self, value: bool) -> None:
        self._fused_scan = bool(value)

    @property
    def nlist(self) -> int:
        """Routing cells (0 while unrouted or untrained)."""
        return 0 if self._centroids is None else int(self._centroids.shape[0])

    @property
    def nprobe(self) -> int:
        """Cells probed per query when routed."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        if int(value) < 1:
            raise ValueError("nprobe must be >= 1")
        self._nprobe = int(value)

    @property
    def ids(self) -> List[int]:
        return [] if self._ids is None else [int(i) for i in self._ids[: self._size]]

    @property
    def nbytes(self) -> int:
        """Bytes of the live rows: codes (or float staging) + norms + ids.

        After training this is ``len(self) * (code_width + 4 + 8)`` — the
        quantized payload plus the float32 norm and int64 id columns.  The
        codec tables and routing structures are fixed overheads, reported
        separately by :attr:`codec_nbytes` / :attr:`routing_nbytes`.
        """
        if self._size == 0:
            return 0
        payload = self._codes if self._codes is not None else self._staging
        return int(
            payload[: self._size].nbytes
            + self._norms[: self._size].nbytes
            + self._ids[: self._size].nbytes
        )

    @property
    def allocated_nbytes(self) -> int:
        """Bytes actually allocated (capacity rows, not just live ones)."""
        payload = self._codes if self._codes is not None else self._staging
        if payload is None:
            return 0
        return int(payload.nbytes + self._norms.nbytes + self._ids.nbytes)

    @property
    def codec_nbytes(self) -> int:
        """Bytes of the trained codec tables (scale/offset or codebooks)."""
        return int(self._quantizer.nbytes)

    @property
    def routing_nbytes(self) -> int:
        """Bytes of the routing structures (centroids + lists + row map)."""
        total = self._row_of.nbytes + sum(p.nbytes for p in self._lists)
        if self._centroids is not None:
            total += int(self._centroids.nbytes)
        return int(total)

    @property
    def fused_scan(self) -> bool:
        """Fused single-pass ADC scans (True) vs the decode-to-float64
        reference scan (False).  Togglable at runtime so benchmarks and
        parity tests compare both paths on one index."""
        return self._fused_scan

    @fused_scan.setter
    def fused_scan(self, value: bool) -> None:
        self._fused_scan = bool(value)

    @property
    def prune_probes(self) -> bool:
        """Whether exact-bound probe pruning is enabled (routed, fused mode)."""
        return self._prune_probes

    @prune_probes.setter
    def prune_probes(self, value: bool) -> None:
        self._prune_probes = bool(value)

    @property
    def scan_threads(self) -> int:
        """Worker threads for the optional parallel probe scan (1 = serial)."""
        return self._scan_threads

    @scan_threads.setter
    def scan_threads(self, value: int) -> None:
        if int(value) < 1:
            raise ValueError("scan_threads must be >= 1")
        self._scan_threads = int(value)

    @property
    def scan_stats(self) -> Dict[str, int]:
        """Cumulative scan counters (scanned/pruned probes, rows, early stops)."""
        return dict(self._scan_stats)

    def reset_scan_stats(self) -> None:
        """Zero the :attr:`scan_stats` counters."""
        for key in self._scan_stats:
            self._scan_stats[key] = 0

    @property
    def scan_nbytes(self) -> int:
        """Bytes of the scan-acceleration structures (pair mirror + scratch).

        Deliberately separate from :attr:`nbytes` / :attr:`codec_nbytes` /
        :attr:`routing_nbytes`: those report the storage the paper's memory
        accounting tracks, while these buffers exist purely to keep the hot
        path allocation-free and can be dropped (``clear``) without losing
        any state.
        """
        total = self._scratch.nbytes
        if self._pair_mirror is not None:
            total += int(self._pair_mirror.nbytes)
        return int(total)

    def __contains__(self, id: int) -> bool:
        return int(id) in self._id_to_row

    def get(self, id: int) -> np.ndarray:
        """The stored vector for ``id``.

        Exact while the index is untrained (float staging); after training
        the reconstruction is the dequantized code times the cached norm —
        approximate by design.
        """
        row = self._id_to_row.get(int(id))
        if row is None:
            raise KeyError(f"no vector with id {id}")
        if self._codes is not None:
            unit = self._quantizer.decode(
                self._codes[row : row + 1], dtype=np.float64
            )[0]
        else:
            unit = np.asarray(self._staging[row], dtype=np.float64)
        return unit * float(self._norms[row])

    # ------------------------------------------------------------------ #
    # Capacity / dim
    # ------------------------------------------------------------------ #
    def _check_dim(self, d: int) -> None:
        if self._dim is None:
            self._quantizer.validate_dim(int(d))
            self._dim = int(d)
        elif d != self._dim:
            raise ValueError(f"vector dim {d} does not match index dim {self._dim}")

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if self._norms is None:
            capacity = max(self._initial_capacity, needed)
            if self._quantizer.is_trained:
                self._codes = np.empty(
                    (capacity, self._quantizer.code_width(self._dim)), dtype=np.uint8
                )
            else:
                self._staging = np.empty((capacity, self._dim), dtype=np.float32)
            self._norms = np.empty(capacity, dtype=np.float32)
            self._ids = np.empty(capacity, dtype=np.int64)
            return
        capacity = self._norms.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        payload = self._codes if self._codes is not None else self._staging
        grown = np.empty((capacity, payload.shape[1]), dtype=payload.dtype)
        grown[: self._size] = payload[: self._size]
        if self._codes is not None:
            self._codes = grown
        else:
            self._staging = grown
        if self._pair_mirror is not None:
            grown_mirror = np.empty(
                (self._pair_mirror.shape[0], capacity), dtype=np.uint16
            )
            grown_mirror[:, : self._size] = self._pair_mirror[:, : self._size]
            self._pair_mirror = grown_mirror
        grown_norms = np.empty(capacity, dtype=np.float32)
        grown_norms[: self._size] = self._norms[: self._size]
        self._norms = grown_norms
        grown_ids = np.empty(capacity, dtype=np.int64)
        grown_ids[: self._size] = self._ids[: self._size]
        self._ids = grown_ids

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _training_sample(self, rows: np.ndarray) -> np.ndarray:
        if rows.shape[0] > self._train_sample:
            pick = self._rng.choice(rows.shape[0], size=self._train_sample, replace=False)
            return rows[pick]
        return rows

    def _train(self) -> None:
        """Train codec (once) + routing on the staged rows, encode, drop staging."""
        rows = self._staging[: self._size]
        sample = self._training_sample(rows)
        self._quantizer.train(sample, self._rng)
        capacity = self._staging.shape[0]
        self._codes = np.empty(
            (capacity, self._quantizer.code_width(self._dim)), dtype=np.uint8
        )
        for start in range(0, self._size, _ENCODE_BLOCK):
            block = rows[start : start + _ENCODE_BLOCK]
            self._codes[start : start + block.shape[0]] = self._quantizer.encode(block)
        if self._routed:
            self._train_routing(rows, sample)
        self._staging = None
        self._trained_size = self._size
        self._mutations_since_train = 0
        self._repartition_due = False
        self._mirror_sync(0, self._size)

    def _assign_rows(self, rows: np.ndarray) -> np.ndarray:
        """Nearest-centroid cell per float32 row, blocked to bound memory.

        The old one-shot ``rows @ centroids.T`` materialized an
        ``(n, nlist)`` float32 score matrix — ~16 GB at 10⁶ rows with the
        default ``nlist ≈ 4√n`` — on every repartition.
        """
        nlist = self._centroids.shape[0]
        block = max(1, _ASSIGN_BLOCK_ELEMS // nlist)
        out = np.empty(rows.shape[0], dtype=np.int64)
        for start in range(0, rows.shape[0], block):
            chunk = rows[start : start + block]
            out[start : start + chunk.shape[0]] = np.argmax(
                chunk @ self._centroids.T, axis=1
            )
        return out

    def _train_routing(self, rows: np.ndarray, sample: np.ndarray) -> None:
        """(Re)fit the coarse centroids and rebuild every inverted list."""
        size = self._size
        nlist = self._nlist_config or 4 * int(math.ceil(math.sqrt(size)))
        nlist = max(1, min(nlist, sample.shape[0]))
        self._centroids = _spherical_kmeans(
            sample, nlist, self._kmeans_iters, self._rng
        )
        assign = self._assign_rows(np.asarray(rows, dtype=np.float32))
        self._lists, self._list_of = build_inverted_lists(
            self._ids[:size], assign, self._centroids.shape[0]
        )
        # Bound stats refer to the old partition; recompute lazily.  Storage
        # still reflects arrival order until the next maintenance() pass.
        self._cell_stats = None
        self._layout_clustered = False

    def _retrain_routing(self) -> None:
        """Re-partition from the dequantized rows (the floats are gone)."""
        rows = np.empty((self._size, self._dim), dtype=np.float32)
        for start in range(0, self._size, _ENCODE_BLOCK):
            chunk = self._codes[start : min(start + _ENCODE_BLOCK, self._size)]
            rows[start : start + chunk.shape[0]] = self._quantizer.decode(chunk)
        self._train_routing(rows, self._training_sample(rows))
        self._trained_size = self._size
        self._mutations_since_train = 0
        self._repartition_due = False

    # ------------------------------------------------------------------ #
    # Scan-acceleration structures (pair mirror, probe-pruning bound stats)
    # ------------------------------------------------------------------ #
    def _mirror_eligible(self) -> bool:
        """Whether the PQ pair-code mirror applies to this configuration."""
        return (
            isinstance(self._quantizer, ProductQuantizer)
            and self._quantizer.is_trained
            and not self._routed
            and self._quantizer.m % 2 == 0
        )

    def _mirror_sync(self, start: int, stop: int) -> None:
        """Keep the pair-packed scan mirror consistent with ``codes[start:stop]``.

        The mirror is a ``(m//2, capacity)`` column-major-by-construction
        uint16 matrix with ``mirror[p, i] = codes[i, 2p] + ksub_eff ·
        codes[i, 2p+1]`` — each fused-scan gather then reads one contiguous
        mirror row.  Maintained whenever eligible (regardless of the
        ``fused_scan`` toggle) so flipping the flag on a live index needs no
        rebuild.  Built lazily on the first sync after training or restore.
        """
        if self._codes is None or not self._mirror_eligible():
            return
        k = self._quantizer.ksub_eff
        if self._pair_mirror is None:
            self._pair_mirror = np.empty(
                (self._quantizer.m // 2, self._codes.shape[0]), dtype=np.uint16
            )
            start, stop = 0, self._size
        if stop <= start:
            return
        codes = self._codes[start:stop]
        pairs = codes[:, 0::2].astype(np.uint16)
        pairs += np.uint16(k) * codes[:, 1::2]
        self._pair_mirror[:, start:stop] = pairs.T

    def _cell_stats_update(self, codes: np.ndarray, assign: np.ndarray) -> None:
        """Fold freshly assigned code rows into the per-cell bound stats.

        Mirrors ``IVFIndex._cell_stats_update`` but decodes the codes first:
        the bound must cover the *reconstructed* rows the scan actually
        scores, not the exact originals.
        """
        if self._cell_stats is None:
            return
        a_min, a_max, b_max = self._cell_stats
        R = self._quantizer.decode(codes, dtype=np.float64)
        C = self._centroids[assign].astype(np.float64)
        a = np.einsum("ij,ij->i", R, C)
        sq = np.einsum("ij,ij->i", R, R)
        b = np.sqrt(np.maximum(0.0, sq - a * a))
        np.minimum.at(a_min, assign, a)
        np.maximum.at(a_max, assign, a)
        np.maximum.at(b_max, assign, b)

    def _compute_cell_stats(self) -> None:
        """(Re)build the per-cell bound stats from every live code row."""
        nlist = self._centroids.shape[0]
        self._cell_stats = (np.zeros(nlist), np.zeros(nlist), np.zeros(nlist))
        if self._size == 0:
            return
        assign = np.empty(self._size, dtype=np.int64)
        for li, lst in enumerate(self._lists):
            view = lst.view()
            if view.size:
                assign[self._row_of.rows(view)] = li
        block = max(1, _ASSIGN_BLOCK_ELEMS // max(self._dim or 1, 1))
        for start in range(0, self._size, block):
            stop = min(start + block, self._size)
            self._cell_stats_update(self._codes[start:stop], assign[start:stop])

    def _compact_layout(self) -> None:
        """Reorder storage cell-major: each cell's codes become one
        contiguous ascending-row range.

        The routed fused scan scores candidates in ascending row order
        (see :func:`probe_scan_batched`); with arrival-order storage those
        rows are scattered across the whole code matrix — at 10⁶ entries a
        64-probe candidate gather touches one ~64-byte row per 4 KB page and
        the scan is DRAM-latency bound.  After compaction the same gather
        reads ``nprobe`` sequential runs and the scan is bandwidth bound.
        Pure storage permutation: ids, cell assignments, quantized codes and
        all derived stats are unchanged, so recall and ranking semantics are
        identical — only the BLAS summation order (and thus float ulps)
        shifts, which the final-ranking float64 rescore absorbs.
        """
        self._materialize()
        n = self._size
        ids_new = np.empty(n, dtype=np.int64)
        pos = 0
        for lst in self._lists:
            view = lst.view()
            c = view.shape[0]
            if c == 0:
                continue
            ids_new[pos : pos + c] = np.sort(view)
            pos += c
        order = self._row_of.rows(ids_new)  # new row -> old row
        self._codes[:n] = self._codes[:n].take(order, axis=0)
        self._norms[:n] = self._norms[:n].take(order)
        self._ids[:n] = ids_new
        if self._pair_mirror is not None:
            self._pair_mirror[:, :n] = self._pair_mirror[:, :n].take(order, axis=1)
        self._id_map = dict(zip(ids_new.tolist(), range(n)))
        self._row_of.remap_block(ids_new, 0)
        self._layout_clustered = True

    def maintenance(self) -> Dict[str, object]:
        """Run deferred repartitioning, layout compaction and bound-stat
        refreshes off-query.

        With ``auto_repartition=False`` the growth/churn-triggered routing
        retraining is deferred to this hook (the serving fleet calls it
        between batching windows); it also groups code storage cell-major so
        probe gathers read contiguous ranges, and precomputes the
        probe-pruning stats so the first search after a (re)partition
        doesn't pay for them.
        """
        done: Dict[str, object] = {}
        if self._repartition_due:
            self._retrain_routing()
            done["repartitioned"] = True
            done["trained_size"] = self._trained_size
        if (
            self._routed
            and self._centroids is not None
            and self._codes is not None
            and self._size
            and not self._layout_clustered
        ):
            self._compact_layout()
            done["layout_compacted"] = True
        if (
            self._routed
            and self._prune_probes
            and self._centroids is not None
            and self._cell_stats is None
            and self._size
        ):
            self._compute_cell_stats()
            done["cell_stats_refreshed"] = True
        return done

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, vector: np.ndarray, id: Optional[int] = None) -> int:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        self._check_dim(vector.shape[0])
        if id is None:
            id = self._next_id
        id = int(id)
        if id in self._id_to_row:
            raise ValueError(f"id {id} is already in the index")
        self._next_id = max(self._next_id, id + 1)
        self._materialize()
        self._ensure_capacity(1)
        unit, norms = _normalize_rows(vector)
        row = self._size
        if self._quantizer.is_trained:
            self._codes[row] = self._quantizer.encode(unit)[0]
        else:
            self._staging[row] = unit[0]
        self._norms[row] = norms[0]
        self._ids[row] = id
        self._id_to_row[id] = row
        self._size += 1
        self._after_add(np.asarray([id], dtype=np.int64), row, unit)
        return id

    def add_batch(
        self, vectors: np.ndarray, ids: Optional[Sequence[int]] = None
    ) -> List[int]:
        V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if V.size == 0:
            return []
        self._check_dim(V.shape[1])
        n = V.shape[0]
        if ids is None:
            ids = list(range(self._next_id, self._next_id + n))
        else:
            ids = [int(i) for i in ids]
            if len(ids) != n:
                raise ValueError("ids must align with vectors")
            if len(set(ids)) != n:
                raise ValueError("ids must be unique")
            for i in ids:
                if i in self._id_to_row:
                    raise ValueError(f"id {i} is already in the index")
        self._materialize()
        self._ensure_capacity(n)
        unit, norms = _normalize_rows(V)
        start = self._size
        if self._quantizer.is_trained:
            self._codes[start : start + n] = self._quantizer.encode(unit)
        else:
            self._staging[start : start + n] = unit
        self._norms[start : start + n] = norms
        self._ids[start : start + n] = ids
        for offset, i in enumerate(ids):
            self._id_to_row[i] = start + offset
        self._size += n
        self._next_id = max(self._next_id, max(ids) + 1)
        self._after_add(np.asarray(ids, dtype=np.int64), start, unit)
        return list(ids)

    # NOTE: the incremental routing maintenance below (assign-on-add,
    # list-discard + RowMap compaction on remove, growth/churn repartition
    # trigger) deliberately parallels IVFIndex._post_add/_post_remove in
    # ivf.py — the storage models differ (codes vs float rows), but a change
    # to the threshold or compaction rule there almost certainly applies
    # here too.  The list-rebuild itself is shared (build_inverted_lists).
    def _after_add(self, ids: np.ndarray, start_row: int, unit_rows: np.ndarray) -> None:
        if self._routed:
            self._row_of.set_block(ids, start_row)
        if not self._quantizer.is_trained:
            if self._size >= self._min_train_size:
                self._train()
            return
        self._mirror_sync(start_row, start_row + ids.shape[0])
        if self._routed and self._centroids is not None:
            assign = self._assign_rows(np.asarray(unit_rows, dtype=np.float32))
            for id, li in zip(ids.tolist(), assign.tolist()):
                self._lists[li].append(id)
                self._list_of[id] = li
            self._layout_clustered = False
            self._cell_stats_update(
                self._codes[start_row : start_row + ids.shape[0]], assign
            )
            self._mutations_since_train += ids.shape[0]
            # Inline by default; deferred to maintenance() when the owner
            # opted the O(n) retraining off the query/add path.
            threshold = self._repartition_growth * self._trained_size
            if self._size >= threshold or self._mutations_since_train >= threshold:
                if self._auto_repartition:
                    self._retrain_routing()
                else:
                    self._repartition_due = True

    def remove(self, id: int) -> None:
        id = int(id)
        if int(id) not in self._id_to_row:
            raise KeyError(f"no vector with id {id}")
        self._materialize()
        row = self._id_to_row.pop(id)
        payload = self._codes if self._codes is not None else self._staging
        last = self._size - 1
        moved_id: Optional[int] = None
        if row != last:
            payload[row] = payload[last]
            if self._pair_mirror is not None:
                self._pair_mirror[:, row] = self._pair_mirror[:, last]
            self._norms[row] = self._norms[last]
            moved_id = int(self._ids[last])
            self._ids[row] = moved_id
            self._id_to_row[moved_id] = row
        self._size -= 1
        if self._routed:
            self._row_of.unset(id)
            if moved_id is not None:
                self._row_of.move(moved_id, row)
            if self._row_of.compaction_due(self._size):
                self._row_of.maybe_compact(self._ids[: self._size])
            if self._centroids is not None:
                li = self._list_of.pop(id)
                self._lists[li].discard(id)
                self._mutations_since_train += 1
                self._layout_clustered = False

    def rebuild(self, vectors: np.ndarray, ids: Sequence[int]) -> None:
        ids = [int(i) for i in ids]
        V = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if not ids:
            if V.size != 0:
                raise ValueError("ids must align with vectors")
            self.clear(reset_ids=False)
            return
        if V.shape[0] != len(ids):
            raise ValueError("ids must align with vectors")
        if self._constructor_dim is not None and V.shape[1] != self._constructor_dim:
            raise ValueError(
                f"vector dim {V.shape[1]} does not match index dim "
                f"{self._constructor_dim}"
            )
        self.clear(reset_ids=False)
        self._check_dim(int(V.shape[1]))
        self.add_batch(V, ids=ids)

    def clear(self, reset_ids: bool = True) -> None:
        self._size = 0
        self._staging = None
        self._codes = None
        self._norms = None
        self._ids = None
        self._id_map = {}
        self._mmap_backed = False
        self._quantizer.reset()
        self._row_of.clear()
        self._centroids = None
        self._lists = []
        self._list_of = {}
        self._trained_size = 0
        self._mutations_since_train = 0
        self._repartition_due = False
        self._pair_mirror = None
        self._cell_stats = None
        self._layout_clustered = False
        self._scratch.clear()
        self._dim = self._constructor_dim
        if reset_ids:
            self._next_id = 0

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    supports_stop_score = True

    def _prepare_queries(
        self, Q: np.ndarray, prenormalized: bool
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(float64 unit rows, float32 contiguous rows)`` from scratch.

        Same contract as :meth:`FlatIndex._prepare_queries` (identical
        normalization ufuncs, zero per-call allocation), but returns both
        precisions: the float32 rows drive the quantized scans and the
        float64 rows the exact rescore.  With ``prenormalized=True`` the
        caller asserts unit rows; a contiguous float32 input is then used
        for scanning without any copy (float32→float64 widening for the
        rescore side is exact).
        """
        if Q.shape[1] != self._dim:
            raise ValueError(f"query dim {Q.shape[1]} != index dim {self._dim}")
        sc = self._scratch
        if prenormalized:
            unit = sc.get("query.unit64", Q.shape, np.float64)
            np.copyto(unit, Q, casting="unsafe")
            if Q.dtype == np.float32 and Q.flags.c_contiguous:
                return unit, Q
            qf = sc.get("query.f32", Q.shape, np.float32)
            np.copyto(qf, Q, casting="unsafe")
            return unit, qf
        norms = np.linalg.norm(Q, axis=1, keepdims=True)
        unit = sc.get("query.unit64", Q.shape, np.float64)
        np.divide(Q, np.where(norms > 1e-12, norms, 1.0), out=unit)
        qf = sc.get("query.f32", Q.shape, np.float32)
        np.copyto(qf, unit, casting="unsafe")
        return unit, qf

    def _rank(
        self,
        cand_rows: np.ndarray,
        cand_scores: np.ndarray,
        query64: np.ndarray,
        top_k: int,
        score_threshold: Optional[float],
    ) -> List[IndexHit]:
        """Final ranking of one query's candidates, with optional rescore.

        With ``rescore > 1`` the ``top_k·rescore`` best candidates by
        quantized score are re-scored in float64 against the dequantized
        codes before the final top-k cut.  The candidate cut uses the
        deterministic :func:`det_topk` selection, so the scan-score → final
        pipeline is a pure function of the score values — the keystone of
        the fused/reference decision-invariance contract (see
        ``docs/benchmarks.md``; with ``rescore == 1`` the raw scan scores
        are the final scores and the two paths differ within codec error).
        """
        n = cand_scores.shape[0]
        if self._rescore > 1 and self._codes is not None:
            keff = min(top_k * self._rescore, n)
            if keff < n:
                keep = det_topk(cand_scores, keff)
                cand_rows = cand_rows[keep]
                cand_scores = cand_scores[keep]
            decoded = self._quantizer.decode(self._codes[cand_rows], dtype=np.float64)
            cand_scores = decoded @ query64
        return topk_hits(
            self._ids[cand_rows], cand_scores, top_k, score_threshold
        )

    def search(
        self,
        queries: np.ndarray,
        top_k: int = 5,
        score_threshold: Optional[float] = None,
        *,
        stop_score: Optional[float] = None,
        prenormalized: bool = False,
    ) -> List[List[IndexHit]]:
        """Batched top-k cosine search over the quantized rows.

        Untrained: exact float32 scan of the staging buffer.  Trained,
        unrouted: chunked quantized scoring of every code row.  Trained and
        routed: the ``nprobe`` nearest cells' lists only.  Scores are cosine
        similarities up to the codec's reconstruction error (see the module
        docstring); ``score_threshold`` filters on those scores.

        ``stop_score`` enables lossy threshold early termination: scanning a
        query stops once its running best scan score reaches the value
        (honored by the routed probe loop per query, and by the flat scan
        for single-query and small-batch PQ lookups; ignored while
        untrained).  ``prenormalized=True`` skips query normalization as in
        :meth:`FlatIndex.search`.
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if prenormalized:
            Q = np.atleast_2d(np.asarray(queries))
        else:
            Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = Q.shape[0]
        if self._size == 0:
            return [[] for _ in range(n_queries)]
        unit, Qf = self._prepare_queries(Q, prenormalized)

        if not self._quantizer.is_trained:
            # Staging phase is bounded by min_train_size: one matmul is fine.
            scores = Qf @ self._staging[: self._size].T
            return [
                topk_hits(
                    self._ids[: self._size], scores[qi], top_k, score_threshold
                )
                for qi in range(n_queries)
            ]

        if self._routed and self._centroids is not None:
            return self._search_routed(Qf, unit, top_k, score_threshold, stop_score)

        if n_queries <= _MIRROR_MAX_BATCH:
            return self._search_flat_small(
                Qf, unit, top_k, score_threshold, stop_score
            )
        return self._search_flat_batch(Qf, unit, top_k, score_threshold)

    def _search_flat_small(
        self,
        Qf: np.ndarray,
        unit64: np.ndarray,
        top_k: int,
        score_threshold: Optional[float],
        stop_score: Optional[float],
    ) -> List[List[IndexHit]]:
        """Latency-path flat scan (≤ ``_MIRROR_MAX_BATCH`` queries).

        Fused mode scores each chunk in a single pass (SQ8: blocked
        cast+gemv; even-m PQ: pair-LUT gathers over the code mirror) with
        every intermediate in scratch; reference mode decodes each chunk to
        a materialized float64 matrix first.  Both modes select each chunk's
        ``keff`` survivors with the deterministic :func:`det_topk`, so the
        candidate set is a pure function of the scan scores.
        """
        n = self._size
        n_queries = Qf.shape[0]
        sc = self._scratch
        chunk = self._chunk_size
        keff = min(max(top_k * self._rescore, top_k), n)
        nchunks = -(-n // chunk)
        cap = min(keff * nchunks, n)
        fused = self._fused_scan
        qz = self._quantizer

        if fused and self._pair_mirror is not None:
            # Per-query pair-LUT scan over the mirror, early stop per query.
            k = qz.ksub_eff
            m2 = qz.m // 2
            lut = sc.get("flat.lut", (qz.m, k), np.float32)
            pair_luts = sc.get("flat.pairlut", (n_queries, m2, k * k), np.float32)
            for qi in range(n_queries):
                qz.build_lut(Qf[qi], lut)
                qz.build_pair_lut(lut, pair_luts[qi])
            srow = sc.get("flat.srow", (min(chunk, n),), np.float32)
            tmp = sc.get("flat.tmp", (min(chunk, n),), np.float32)
            acc_rows = sc.get("flat.acc_rows", (cap,), np.int64)
            acc_scores = sc.get("flat.acc_scores", (cap,), np.float64)
            results: List[List[IndexHit]] = []
            for qi in range(n_queries):
                filled = 0
                for start in range(0, n, chunk):
                    stop = min(start + chunk, n)
                    c = stop - start
                    out = srow[:c]
                    qz.scores_fused_pairs(
                        pair_luts[qi], self._pair_mirror[:, start:stop], out, tmp[:c]
                    )
                    sel = det_topk(out, min(keff, c))
                    cnt = sel.shape[0]
                    seg = acc_rows[filled : filled + cnt]
                    seg[:] = sel
                    seg += start
                    acc_scores[filled : filled + cnt] = out[sel]
                    filled += cnt
                    if (
                        stop_score is not None
                        and float(out[sel].max()) >= stop_score
                    ):
                        self._scan_stats["early_stops"] += 1
                        break
                results.append(
                    self._rank(
                        acc_rows[:filled],
                        acc_scores[:filled],
                        unit64[qi],
                        top_k,
                        score_threshold,
                    )
                )
            return results

        # SQ8 fused (or PQ without a mirror, or the reference path): chunks
        # are scored for the whole small batch at once; candidates accumulate
        # per query, early stop applies to single-query lookups.
        acc_rows = sc.get("flat.acc_rows_b", (n_queries, cap), np.int64)
        acc_scores = sc.get("flat.acc_scores_b", (n_queries, cap), np.float64)
        fills = [0] * n_queries
        sbuf = (
            sc.get("flat.scores", (n_queries, min(chunk, n)), np.float32)
            if fused and isinstance(qz, ScalarQuantizer)
            else None
        )
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            c = stop - start
            if sbuf is not None:
                S = sbuf[:, :c]
                qz.scores_fused(Qf, self._codes[start:stop], S, sc)
            elif fused:
                S = qz.scores(Qf, self._codes[start:stop])
            else:
                decoded = qz.decode(self._codes[start:stop], dtype=np.float64)
                S = unit64 @ decoded.T
            kk = min(keff, c)
            for qi in range(n_queries):
                sel = det_topk(S[qi], kk)
                cnt = sel.shape[0]
                seg = acc_rows[qi, fills[qi] : fills[qi] + cnt]
                seg[:] = sel
                seg += start
                acc_scores[qi, fills[qi] : fills[qi] + cnt] = S[qi][sel]
                fills[qi] += cnt
            if (
                stop_score is not None
                and n_queries == 1
                and float(acc_scores[0, : fills[0]].max()) >= stop_score
            ):
                self._scan_stats["early_stops"] += 1
                break
        return [
            self._rank(
                acc_rows[qi, : fills[qi]],
                acc_scores[qi, : fills[qi]],
                unit64[qi],
                top_k,
                score_threshold,
            )
            for qi in range(n_queries)
        ]

    def _search_flat_batch(
        self,
        Qf: np.ndarray,
        unit64: np.ndarray,
        top_k: int,
        score_threshold: Optional[float],
    ) -> List[List[IndexHit]]:
        """Batched-throughput flat scan (> ``_MIRROR_MAX_BATCH`` queries).

        The chunked gemm/LUT structure of the original scan; ``fused_scan``
        only switches the per-chunk scorer (quantized vs decode-to-float64
        reference), and both modes use the same per-chunk selection, so the
        fused/reference comparison conditions identically on batch size.
        """
        n_queries = Qf.shape[0]
        keff = min(max(top_k * self._rescore, top_k), self._size)
        chunk_rows: List[np.ndarray] = []
        chunk_scores: List[np.ndarray] = []
        for start in range(0, self._size, self._chunk_size):
            stop = min(start + self._chunk_size, self._size)
            if self._fused_scan:
                S = self._quantizer.scores(Qf, self._codes[start:stop])
            else:
                decoded = self._quantizer.decode(
                    self._codes[start:stop], dtype=np.float64
                )
                S = unit64 @ decoded.T
            c = stop - start
            kk = min(keff, c)
            if kk < c:
                idx = np.argpartition(-S, kth=kk - 1, axis=1)[:, :kk]
                chunk_scores.append(np.take_along_axis(S, idx, axis=1))
                chunk_rows.append(idx + start)
            else:
                chunk_scores.append(S)
                chunk_rows.append(
                    np.broadcast_to(np.arange(start, stop), (n_queries, c))
                )
        # Joins a handful of fixed-size chunk results once per *batch* (the
        # chunking bounds peak score-matrix memory); per-entry copies were
        # already eliminated by the preallocated code rows.
        rows = np.concatenate(chunk_rows, axis=1)  # repro: ignore[RPL003]
        scores = np.concatenate(chunk_scores, axis=1)  # repro: ignore[RPL003]
        return [
            self._rank(rows[qi], scores[qi], unit64[qi], top_k, score_threshold)
            for qi in range(n_queries)
        ]

    def _search_routed(
        self,
        Qf: np.ndarray,
        unit64: np.ndarray,
        top_k: int,
        score_threshold: Optional[float],
        stop_score: Optional[float],
    ) -> List[List[IndexHit]]:
        """Probe the ``nprobe`` nearest cells and rank their lists' codes.

        The default scan is :func:`probe_scan_batched`: every probed cell's
        ids concatenate into one canonical (ascending) candidate block and a
        single fused scoring call covers them all — per-cell dispatch, not
        arithmetic, is the latency floor once cells are a few hundred rows.
        With ``stop_score`` set the scan switches to the per-cell
        :func:`probe_scan` loop, which honours threshold early termination
        and (``prune_probes``) exact-bound pruning between cells.  Candidate
        gathers, casts and scores all live in scratch; the reference path
        (``fused_scan=False``) decodes probed rows to a materialized float64
        matrix.
        """
        n_queries = Qf.shape[0]
        nlist = self._centroids.shape[0]
        nprobe = min(self._nprobe, nlist)
        sc = self._scratch
        qz = self._quantizer
        centroid_scores = sc.get("rt.cscores", (n_queries, nlist), np.float32)
        np.matmul(Qf, self._centroids.T, out=centroid_scores)
        probes = _sorted_probes(centroid_scores, nprobe)
        fused = self._fused_scan
        threaded = self._scan_threads > 1 and stop_score is None
        bounds = None
        if stop_score is not None and fused and self._prune_probes and not threaded:
            if self._cell_stats is None:
                self._compute_cell_stats()
            bounds = cell_bounds(centroid_scores, self._cell_stats, sc, "rt.bounds")
        keff_target = top_k * self._rescore if self._rescore > 1 else top_k
        sq = isinstance(qz, ScalarQuantizer)
        if fused and sq:
            scaled_q = sc.get("rt.scaled_q", Qf.shape, np.float32)
            np.multiply(Qf, qz.scale[None, :], out=scaled_q)
            q_off = sc.get("rt.q_off", (n_queries,), np.float32)
            np.matmul(Qf, qz.offset, out=q_off)
        elif fused:
            luts = sc.get("rt.lut", (n_queries, qz.m, qz.ksub_eff), np.float32)
            for qi in range(n_queries):
                qz.build_lut(Qf[qi], luts[qi])
        codes = self._codes
        results: List[List[IndexHit]] = []
        for qi in range(n_queries):
            plist = probes[qi]
            total = 0
            for li in plist:
                total += len(self._lists[li])
            if total == 0:
                results.append([])
                continue
            cand_ids = sc.get("rt.cand_ids", (total,), np.int64)
            cand_rows = sc.get("rt.cand_rows", (total,), np.int64)
            score_dtype = np.float32 if fused else np.float64
            cand_scores = sc.get("rt.cand_scores", (total,), score_dtype)
            if fused and sq:
                sq_q = scaled_q[qi]
                off_q = float(q_off[qi])

                def score_rows(rows: np.ndarray, out: np.ndarray) -> None:
                    qz.score_rows_fused(codes, rows, sq_q, off_q, out, sc, "rt")

                def score_rows_alloc(rows: np.ndarray, out: np.ndarray) -> None:
                    cast = codes[rows].astype(np.float32)
                    np.matmul(cast, sq_q, out=out)
                    np.add(out, off_q, out=out)

            elif fused:
                lut_q = luts[qi]

                def score_rows(rows: np.ndarray, out: np.ndarray) -> None:
                    qz.score_rows_lut(codes, rows, lut_q, out, sc, "rt")

                def score_rows_alloc(rows: np.ndarray, out: np.ndarray) -> None:
                    gathered = codes[rows]
                    np.take(lut_q[0], gathered[:, 0], out=out)
                    for j in range(1, qz.m):
                        out += lut_q[j][gathered[:, j]]

            else:
                u64 = unit64[qi]

                def score_rows(rows: np.ndarray, out: np.ndarray) -> None:
                    decoded = qz.decode(codes[rows], dtype=np.float64)
                    np.matmul(decoded, u64, out=out)

                score_rows_alloc = score_rows

            if threaded:
                filled = probe_scan_threaded(
                    plist,
                    self._lists,
                    self._row_of,
                    score_rows_alloc,
                    cand_ids,
                    cand_rows,
                    cand_scores,
                    self._scan_threads,
                    self._scan_stats,
                )
            elif stop_score is not None:
                kth_buf = sc.get("rt.kth", (total,), score_dtype)
                filled = probe_scan(
                    plist,
                    self._lists,
                    self._row_of,
                    score_rows,
                    cand_ids,
                    cand_rows,
                    cand_scores,
                    kth_buf,
                    keff_target,
                    bounds[qi] if bounds is not None else None,
                    stop_score,
                    self._scan_stats,
                )
            else:
                filled = probe_scan_batched(
                    plist,
                    self._lists,
                    self._row_of,
                    score_rows,
                    cand_ids,
                    cand_rows,
                    cand_scores,
                    self._scan_stats,
                )
            results.append(
                self._rank(
                    cand_rows[:filled],
                    cand_scores[:filled],
                    unit64[qi],
                    top_k,
                    score_threshold,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # Snapshot protocol (see repro.index.snapshot)
    # ------------------------------------------------------------------ #
    @property
    def snapshot_backend(self) -> Optional[str]:
        # Concrete subclasses name their registered backend; the shared base
        # is not registered, so per the VectorIndex contract it reports no
        # snapshot support (save() then raises SnapshotError).
        return None

    def _snapshot_common_params(self) -> Dict[str, object]:
        return {
            "dim": self._constructor_dim,
            "initial_capacity": self._initial_capacity,
            "chunk_size": self._chunk_size,
            "min_train_size": self._min_train_size,
            "train_sample": self._train_sample,
            "rescore": self._rescore,
            "routed": self._routed,
            "nlist": self._nlist_config,
            "nprobe": self._nprobe,
            "kmeans_iters": self._kmeans_iters,
            "repartition_growth": self._repartition_growth,
            "seed": self._seed,
            "fused_scan": self._fused_scan,
            "auto_repartition": self._auto_repartition,
            "prune_probes": self._prune_probes,
            "scan_threads": self._scan_threads,
        }

    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "dim": self._dim,
            "next_id": self._next_id,
            "trained": bool(self._quantizer.is_trained),
            "trained_size": self._trained_size,
            "mutations_since_train": self._mutations_since_train,
            "repartition_due": self._repartition_due,
            "layout_clustered": self._layout_clustered,
            "rng_state": self._rng.bit_generator.state,
        }

    def _snapshot_arrays(self) -> Dict[str, np.ndarray]:
        n = self._size
        d = self._dim or 0
        arrays: Dict[str, np.ndarray] = {
            "ids": self._ids[:n] if self._ids is not None else np.zeros(0, np.int64),
            "norms": (
                self._norms[:n] if self._norms is not None else np.zeros(0, np.float32)
            ),
        }
        if self._quantizer.is_trained:
            # A trained index drained to empty (or loaded from such a
            # snapshot) has no codes matrix allocated yet.
            code_width = self._quantizer.code_width(self._dim) if self._dim else 0
            arrays["codes"] = (
                self._codes[:n]
                if self._codes is not None
                else np.zeros((0, code_width), dtype=np.uint8)
            )
            arrays.update(self._quantizer.snapshot_arrays())
            if self._routed and self._centroids is not None:
                arrays["rt_centroids"] = self._centroids
                live_ids = (
                    self._ids[:n] if self._ids is not None else np.zeros(0, np.int64)
                )
                arrays["rt_assign"] = np.asarray(
                    [self._list_of[int(i)] for i in live_ids], dtype=np.int64
                )
        else:
            arrays["staging"] = (
                self._staging[:n]
                if self._staging is not None
                else np.zeros((0, d), np.float32)
            )
        return arrays

    def _restore(self, state: Mapping[str, object], arrays: Mapping[str, np.ndarray]) -> None:
        self.clear(reset_ids=True)
        ids = np.asarray(arrays["ids"], dtype=np.int64)
        norms = np.asarray(arrays["norms"], dtype=np.float32)
        n = int(ids.shape[0])
        if state["dim"] is not None:
            self._quantizer.validate_dim(int(state["dim"]))
            self._dim = int(state["dim"])
        if bool(state["trained"]):
            self._quantizer.restore_arrays(arrays)
        if n:
            trained = self._quantizer.is_trained
            source = arrays["codes"] if trained else arrays["staging"]
            want_dtype = np.uint8 if trained else np.float32
            if (
                not self._routed
                and isinstance(source, np.memmap)
                and source.dtype == want_dtype
                and np.asarray(norms).dtype == np.float32
            ):
                # Zero-copy warm start: adopt the mapped code (or staging)
                # matrix as storage; the id map builds lazily and the first
                # mutation materializes a private copy.  The routed variants
                # rebuild inverted lists anyway, so they take the copy path.
                if trained:
                    self._codes = source
                else:
                    self._staging = source
                self._norms = np.asarray(norms)
                self._ids = ids
                self._id_map = None
                self._mmap_backed = True
            else:
                self._ensure_capacity(n)
                payload = self._codes if self._codes is not None else self._staging
                payload[:n] = np.asarray(source, dtype=payload.dtype)
                self._norms[:n] = norms
                self._ids[:n] = ids
                self._id_map = {int(i): r for r, i in enumerate(ids.tolist())}
            self._size = n
            if self._routed:
                self._row_of.set_block(ids, 0)
        if self._routed and "rt_centroids" in arrays:
            self._centroids = np.ascontiguousarray(
                arrays["rt_centroids"], dtype=np.float32
            )
            assign = np.asarray(arrays["rt_assign"], dtype=np.int64)
            self._lists, self._list_of = build_inverted_lists(
                ids, assign, self._centroids.shape[0]
            )
        self._next_id = int(state["next_id"])
        self._trained_size = int(state["trained_size"])
        self._mutations_since_train = int(state["mutations_since_train"])
        self._repartition_due = bool(state.get("repartition_due", False))
        # Snapshots preserve row order byte-for-byte, so cell-major layout
        # survives the round trip and the flag can be restored as-is.
        self._layout_clustered = bool(state.get("layout_clustered", False))
        # Scan-acceleration structures are derived state: rebuild the PQ
        # pair mirror from the restored codes; cell stats recompute lazily.
        self._mirror_sync(0, self._size)
        self._cell_stats = None
        rng_state = state.get("rng_state")
        if rng_state is not None:
            rng = np.random.default_rng(self._seed)
            rng.bit_generator.state = rng_state
            self._rng = rng


class SQ8Index(QuantizedIndex):
    """Int8 scalar-quantized cosine index (≈3.5x smaller rows than flat).

    Parameters beyond the storage/training knobs shared with
    :class:`QuantizedIndex`:

    rescore:
        Exact-rescore multiplier R — each query's ``top_k·R`` best
        candidates by quantized score are re-ranked in float64 against the
        dequantized codes (1 disables).
    routed, nlist, nprobe:
        Enable IVF coarse routing over the quantized rows (the registry's
        ``"ivf+sq8"``).
    fused_scan, auto_repartition, prune_probes, scan_threads:
        Hot-path scan knobs shared with :class:`QuantizedIndex`.
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        min_train_size: int = 256,
        train_sample: int = 32768,
        rescore: int = 2,
        routed: bool = False,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
        fused_scan: bool = True,
        auto_repartition: bool = True,
        prune_probes: bool = True,
        scan_threads: int = 1,
    ) -> None:
        super().__init__(
            ScalarQuantizer(),
            dim=dim,
            initial_capacity=initial_capacity,
            chunk_size=chunk_size,
            min_train_size=min_train_size,
            train_sample=train_sample,
            rescore=rescore,
            routed=routed,
            nlist=nlist,
            nprobe=nprobe,
            kmeans_iters=kmeans_iters,
            repartition_growth=repartition_growth,
            seed=seed,
            fused_scan=fused_scan,
            auto_repartition=auto_repartition,
            prune_probes=prune_probes,
            scan_threads=scan_threads,
        )

    @property
    def snapshot_backend(self) -> str:
        return "ivf+sq8" if self._routed else "sq8"

    def _snapshot_params(self) -> Dict[str, object]:
        return self._snapshot_common_params()


class PQIndex(QuantizedIndex):
    """Product-quantized cosine index (``m`` bytes per vector, ADC scoring).

    Parameters beyond the shared knobs:

    m:
        Subspaces (codes per vector).  ``dim`` must be divisible by ``m``;
        smaller sub-dimensions quantize more finely (``m=dim`` degenerates
        to per-dimension non-uniform scalar quantization).
    ksub:
        Centroids per subspace (≤ 256 so one code fits a uint8).
    """

    def __init__(
        self,
        dim: Optional[int] = None,
        m: int = 16,
        ksub: int = 256,
        initial_capacity: int = _MIN_CAPACITY,
        chunk_size: int = 65536,
        min_train_size: int = 256,
        train_sample: int = 32768,
        rescore: int = 2,
        routed: bool = False,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        kmeans_iters: int = 8,
        repartition_growth: float = 2.0,
        seed: int = 0,
        fused_scan: bool = True,
        auto_repartition: bool = True,
        prune_probes: bool = True,
        scan_threads: int = 1,
    ) -> None:
        super().__init__(
            ProductQuantizer(m=m, ksub=ksub, kmeans_iters=max(kmeans_iters, 1)),
            dim=dim,
            initial_capacity=initial_capacity,
            chunk_size=chunk_size,
            min_train_size=min_train_size,
            train_sample=train_sample,
            rescore=rescore,
            routed=routed,
            nlist=nlist,
            nprobe=nprobe,
            kmeans_iters=kmeans_iters,
            repartition_growth=repartition_growth,
            seed=seed,
            fused_scan=fused_scan,
            auto_repartition=auto_repartition,
            prune_probes=prune_probes,
            scan_threads=scan_threads,
        )
        self._m = int(m)
        self._ksub = int(ksub)

    @property
    def m(self) -> int:
        """Number of subspaces (codes per vector)."""
        return self._m

    @property
    def ksub(self) -> int:
        """Centroids per subspace."""
        return self._ksub

    @property
    def snapshot_backend(self) -> str:
        return "ivf+pq" if self._routed else "pq"

    def _snapshot_params(self) -> Dict[str, object]:
        params = self._snapshot_common_params()
        params["m"] = self._m
        params["ksub"] = self._ksub
        return params
