"""Internal building blocks shared by the bucketed ANN backends.

:class:`repro.index.ivf.IVFIndex` and :class:`repro.index.lsh.LSHIndex` both
route a query to a small subset of the stored rows (an inverted list, a hash
bucket) and brute-force only that subset.  Two pieces of bookkeeping are
common to every such backend and live here:

* :class:`Postings` — a growable, swap-deletable ``int64`` id array, the
  representation of one inverted list / one hash bucket.  Appends are
  amortized O(1) (capacity doubling, like the index matrix itself), removal
  is swap-with-last, and ``view()`` exposes the live ids as a numpy slice so
  search-side gathers never copy per element.
* :class:`RowMap` — a vectorized id → row mapping (a dense ``int64`` array
  indexed by id, ``-1`` for absent ids).  The flat storage layer keeps a
  Python dict for one-at-a-time operations; candidate gathering in a search
  needs thousands of translations per query, which this answers with a
  single fancy-index instead of a dict-lookup loop.

Both classes are internal: ids handed to them must already be validated by
the owning index.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.index.base import IndexHit

_MIN_POSTING_CAPACITY = 8


class Postings:
    """One bucket's ids: growable int64 array with swap-with-last removal."""

    __slots__ = ("_ids", "_size")

    def __init__(self) -> None:
        self._ids = np.empty(_MIN_POSTING_CAPACITY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def nbytes(self) -> int:
        """Bytes allocated for this bucket's id storage."""
        return int(self._ids.nbytes)

    def view(self) -> np.ndarray:
        """The live ids as a (read-mostly) numpy slice — no copy."""
        return self._ids[: self._size]

    def _ensure(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._ids.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._size] = self._ids[: self._size]
        self._ids = grown

    def append(self, id: int) -> None:
        """Add one id (amortized O(1))."""
        self._ensure(1)
        self._ids[self._size] = id
        self._size += 1

    def extend(self, ids: np.ndarray) -> None:
        """Add a block of ids in one write."""
        n = int(ids.shape[0])
        if n == 0:
            return
        self._ensure(n)
        self._ids[self._size : self._size + n] = ids
        self._size += n

    def discard(self, id: int) -> bool:
        """Remove ``id`` by scanning the bucket (buckets are small); True if found."""
        live = self._ids[: self._size]
        hits = np.nonzero(live == id)[0]
        if hits.size == 0:
            return False
        pos = int(hits[0])
        last = self._size - 1
        if pos != last:
            self._ids[pos] = self._ids[last]
        self._size -= 1
        return True


class RowMap:
    """Dense id → row translation supporting vectorized candidate gathers.

    Storage is an array indexed by ``id − base``.  Cache entry ids grow
    monotonically and are never reused, so without the ``base`` offset a
    bounded cache under eviction churn would grow this table with the
    *lifetime-maximum* id forever; :meth:`maybe_compact` re-anchors the
    table to the live id span (old ids are evicted first, so the span stays
    near the live count).  The owning index calls it on an amortized
    schedule — every id handed to the map after a compaction is ≥ the base
    by the monotonic-id invariant.
    """

    __slots__ = ("_rows", "_base", "_countdown", "_live")

    def __init__(self) -> None:
        self._rows = np.full(64, -1, dtype=np.int64)
        self._base = 0
        self._countdown = 256
        self._live = 0  # mapped ids; lets an empty map re-anchor freely

    def _ensure(self, max_id: int) -> None:
        slot = max_id - self._base
        capacity = self._rows.shape[0]
        if slot < capacity:
            return
        while capacity <= slot:
            capacity *= 2
        grown = np.full(capacity, -1, dtype=np.int64)
        grown[: self._rows.shape[0]] = self._rows
        self._rows = grown

    def _rebase(self, new_base: int) -> None:
        """Lower ``base`` (an explicit id below it was inserted after a
        compaction re-anchored the table), shifting the existing slots up."""
        shift = self._base - new_base
        capacity = self._rows.shape[0]
        while capacity < self._rows.shape[0] + shift:
            capacity *= 2
        grown = np.full(capacity, -1, dtype=np.int64)
        grown[shift : shift + self._rows.shape[0]] = self._rows
        self._rows = grown
        self._base = new_base

    @property
    def nbytes(self) -> int:
        """Bytes allocated for the id → row table."""
        return int(self._rows.nbytes)

    @property
    def slots(self) -> int:
        """Allocated table slots (compaction-trigger input)."""
        return int(self._rows.shape[0])

    def set_block(self, ids: np.ndarray, start_row: int) -> None:
        """Map ``ids`` to the consecutive rows starting at ``start_row``.

        Every id in the block must be new to the map (the owning index
        already rejects duplicate ids).
        """
        if ids.size == 0:
            return
        lowest = int(ids.min())
        if self._live == 0:
            # Empty map (fresh, cleared, or fully drained): anchor to the
            # incoming block so allocation tracks the id *span*, not the
            # absolute magnitude monotonic ids have reached.  Every slot is
            # -1 when nothing is live, so moving the base is free.
            self._base = lowest
        elif lowest < self._base:
            self._rebase(lowest)
        self._ensure(int(ids.max()))
        self._rows[ids - self._base] = np.arange(
            start_row, start_row + ids.shape[0], dtype=np.int64
        )
        self._live += int(ids.size)

    def move(self, id: int, row: int) -> None:
        """Point ``id`` at a new row (after a swap-with-last delete)."""
        if id < self._base:
            self._rebase(id)
        self._ensure(id)
        self._rows[id - self._base] = row

    def unset(self, id: int) -> None:
        """Drop ``id`` from the mapping."""
        slot = id - self._base
        if 0 <= slot < self._rows.shape[0] and self._rows[slot] != -1:
            self._rows[slot] = -1
            self._live -= 1

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized translation of an id array to its current rows."""
        return self._rows[ids - self._base]

    def compaction_due(self, live_size: int) -> bool:
        """Amortized O(1) removal-path trigger for :meth:`maybe_compact`.

        Counts down so the O(n) compaction attempt runs at most once per
        ``max(256, live_size)`` removals, and only when the allocation
        exceeds 4× the live count (i.e. is mostly tombstones).
        """
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = max(256, live_size)
        return self.slots > 4 * max(64, live_size)

    def maybe_compact(self, ids_by_row: np.ndarray) -> bool:
        """Re-anchor the table to the live id span if that would shrink it.

        ``ids_by_row`` is the owner's live id column (row order); row ``r``
        maps back to ``ids_by_row[r]``.  No-op (returns False) when the
        compacted table would not be smaller than the current allocation.
        """
        if ids_by_row.size == 0:
            if self._rows.shape[0] == 64 and self._base == 0:
                return False
            self.clear()
            return True
        base = int(ids_by_row.min())
        span = int(ids_by_row.max()) - base + 1
        capacity = 64
        while capacity < span:
            capacity *= 2
        if capacity >= self._rows.shape[0]:
            return False
        self._rows = np.full(capacity, -1, dtype=np.int64)
        self._base = base
        self._rows[ids_by_row - base] = np.arange(ids_by_row.shape[0], dtype=np.int64)
        return True

    def clear(self) -> None:
        """Forget every mapping and return to the minimal allocation."""
        self._rows = np.full(64, -1, dtype=np.int64)
        self._base = 0
        self._live = 0


def build_inverted_lists(
    ids: np.ndarray, assign: np.ndarray, nlist: int
) -> "tuple[List[Postings], dict]":
    """Build per-cell inverted lists from a cell assignment, vectorized.

    ``ids[i]`` belongs to cell ``assign[i]``.  Returns the ``nlist``
    :class:`Postings` plus the ``id -> cell`` dict the owning index keeps
    for O(1) removal.  Shared by IVF training/restore and the routed
    quantized backends so the rebuild logic cannot drift between them.
    """
    lists = [Postings() for _ in range(nlist)]
    order = np.argsort(assign, kind="stable")
    sorted_ids = ids[order]
    sorted_assign = assign[order]
    cells = np.arange(nlist)
    starts = np.searchsorted(sorted_assign, cells, side="left")
    ends = np.searchsorted(sorted_assign, cells, side="right")
    for li in range(nlist):
        lists[li].extend(sorted_ids[starts[li] : ends[li]])
    return lists, dict(zip(ids.tolist(), assign.tolist()))


def topk_hits(
    candidate_ids: np.ndarray,
    scores: np.ndarray,
    top_k: int,
    score_threshold: Optional[float],
    max_duplicates: int = 1,
) -> List[IndexHit]:
    """Rank one query's scored candidates into a descending hit list.

    Shared tail of every bucketed search: partial-select the top scores,
    order them, clip float32 rounding back into the valid cosine range and
    apply the optional score floor.

    ``max_duplicates`` is the maximum multiplicity of one id in
    ``candidate_ids`` (LSH probes several tables, so an id can be scored
    once per table).  Selecting ``(top_k − 1) · max_duplicates + 1``
    elements is guaranteed to contain ``top_k`` distinct ids when they
    exist, which lets callers skip a per-query ``np.unique`` over the whole
    candidate set — the dedup happens here, on the handful of winners.
    """
    n = scores.shape[0]
    k = min(top_k if max_duplicates <= 1 else (top_k - 1) * max_duplicates + 1, n)
    if k < n:
        top = np.argpartition(-scores, kth=k - 1)[:k]
        sel = top[np.argsort(-scores[top])]
    else:
        sel = np.argsort(-scores)
    ranked_scores = np.clip(scores[sel], -1.0, 1.0)
    ranked_ids = candidate_ids[sel]
    if score_threshold is not None:
        keep = ranked_scores >= score_threshold
        ranked_scores = ranked_scores[keep]
        ranked_ids = ranked_ids[keep]
    hits: List[IndexHit] = []
    if max_duplicates <= 1:
        for id, score in zip(ranked_ids.tolist(), ranked_scores.tolist()):
            hits.append(IndexHit(id=id, score=score))
        return hits
    seen = set()
    for id, score in zip(ranked_ids.tolist(), ranked_scores.tolist()):
        if id in seen:
            continue
        seen.add(id)
        hits.append(IndexHit(id=id, score=score))
        if len(hits) == top_k:
            break
    return hits
