"""Internal building blocks shared by the bucketed ANN backends.

:class:`repro.index.ivf.IVFIndex` and :class:`repro.index.lsh.LSHIndex` both
route a query to a small subset of the stored rows (an inverted list, a hash
bucket) and brute-force only that subset.  Two pieces of bookkeeping are
common to every such backend and live here:

* :class:`Postings` — a growable, swap-deletable ``int64`` id array, the
  representation of one inverted list / one hash bucket.  Appends are
  amortized O(1) (capacity doubling, like the index matrix itself), removal
  is swap-with-last, and ``view()`` exposes the live ids as a numpy slice so
  search-side gathers never copy per element.
* :class:`RowMap` — a vectorized id → row mapping (a dense ``int64`` array
  indexed by id, ``-1`` for absent ids).  The flat storage layer keeps a
  Python dict for one-at-a-time operations; candidate gathering in a search
  needs thousands of translations per query, which this answers with a
  single fancy-index instead of a dict-lookup loop.

Both classes are internal: ids handed to them must already be validated by
the owning index.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.index.base import IndexHit

_MIN_POSTING_CAPACITY = 8


class Postings:
    """One bucket's ids: growable int64 array with swap-with-last removal."""

    __slots__ = ("_ids", "_size")

    def __init__(self) -> None:
        self._ids = np.empty(_MIN_POSTING_CAPACITY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def nbytes(self) -> int:
        """Bytes allocated for this bucket's id storage."""
        return int(self._ids.nbytes)

    def view(self) -> np.ndarray:
        """The live ids as a (read-mostly) numpy slice — no copy."""
        return self._ids[: self._size]

    def _ensure(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._ids.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._size] = self._ids[: self._size]
        self._ids = grown

    def append(self, id: int) -> None:
        """Add one id (amortized O(1))."""
        self._ensure(1)
        self._ids[self._size] = id
        self._size += 1

    def extend(self, ids: np.ndarray) -> None:
        """Add a block of ids in one write."""
        n = int(ids.shape[0])
        if n == 0:
            return
        self._ensure(n)
        self._ids[self._size : self._size + n] = ids
        self._size += n

    def discard(self, id: int) -> bool:
        """Remove ``id`` by scanning the bucket (buckets are small); True if found."""
        live = self._ids[: self._size]
        hits = np.nonzero(live == id)[0]
        if hits.size == 0:
            return False
        pos = int(hits[0])
        last = self._size - 1
        if pos != last:
            self._ids[pos] = self._ids[last]
        self._size -= 1
        return True


class RowMap:
    """Dense id → row translation supporting vectorized candidate gathers.

    Storage is an array indexed by ``id − base``.  Cache entry ids grow
    monotonically and are never reused, so without the ``base`` offset a
    bounded cache under eviction churn would grow this table with the
    *lifetime-maximum* id forever; :meth:`maybe_compact` re-anchors the
    table to the live id span (old ids are evicted first, so the span stays
    near the live count).  The owning index calls it on an amortized
    schedule — every id handed to the map after a compaction is ≥ the base
    by the monotonic-id invariant.
    """

    __slots__ = ("_rows", "_base", "_countdown", "_live")

    def __init__(self) -> None:
        self._rows = np.full(64, -1, dtype=np.int64)
        self._base = 0
        self._countdown = 256
        self._live = 0  # mapped ids; lets an empty map re-anchor freely

    def _ensure(self, max_id: int) -> None:
        slot = max_id - self._base
        capacity = self._rows.shape[0]
        if slot < capacity:
            return
        while capacity <= slot:
            capacity *= 2
        grown = np.full(capacity, -1, dtype=np.int64)
        grown[: self._rows.shape[0]] = self._rows
        self._rows = grown

    def _rebase(self, new_base: int) -> None:
        """Lower ``base`` (an explicit id below it was inserted after a
        compaction re-anchored the table), shifting the existing slots up."""
        shift = self._base - new_base
        capacity = self._rows.shape[0]
        while capacity < self._rows.shape[0] + shift:
            capacity *= 2
        grown = np.full(capacity, -1, dtype=np.int64)
        grown[shift : shift + self._rows.shape[0]] = self._rows
        self._rows = grown
        self._base = new_base

    @property
    def nbytes(self) -> int:
        """Bytes allocated for the id → row table."""
        return int(self._rows.nbytes)

    @property
    def slots(self) -> int:
        """Allocated table slots (compaction-trigger input)."""
        return int(self._rows.shape[0])

    def set_block(self, ids: np.ndarray, start_row: int) -> None:
        """Map ``ids`` to the consecutive rows starting at ``start_row``.

        Every id in the block must be new to the map (the owning index
        already rejects duplicate ids).
        """
        if ids.size == 0:
            return
        lowest = int(ids.min())
        if self._live == 0:
            # Empty map (fresh, cleared, or fully drained): anchor to the
            # incoming block so allocation tracks the id *span*, not the
            # absolute magnitude monotonic ids have reached.  Every slot is
            # -1 when nothing is live, so moving the base is free.
            self._base = lowest
        elif lowest < self._base:
            self._rebase(lowest)
        self._ensure(int(ids.max()))
        self._rows[ids - self._base] = np.arange(
            start_row, start_row + ids.shape[0], dtype=np.int64
        )
        self._live += int(ids.size)

    def remap_block(self, ids: np.ndarray, start_row: int = 0) -> None:
        """Re-point already-mapped ids at consecutive rows.

        Used by layout compaction, which permutes every live row at once:
        each id stays live (``_live`` is untouched) but moves to the slot the
        cell-major ordering assigns it.
        """
        if ids.size == 0:
            return
        self._rows[ids - self._base] = np.arange(
            start_row, start_row + ids.shape[0], dtype=np.int64
        )

    def move(self, id: int, row: int) -> None:
        """Point ``id`` at a new row (after a swap-with-last delete)."""
        if id < self._base:
            self._rebase(id)
        self._ensure(id)
        self._rows[id - self._base] = row

    def unset(self, id: int) -> None:
        """Drop ``id`` from the mapping."""
        slot = id - self._base
        if 0 <= slot < self._rows.shape[0] and self._rows[slot] != -1:
            self._rows[slot] = -1
            self._live -= 1

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized translation of an id array to its current rows."""
        return self._rows[ids - self._base]

    def rows_into(self, ids: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Allocation-free :meth:`rows`: translate ``ids`` into ``out``.

        ``out`` must be an int64 array of the same length; it is used as the
        working buffer for the offset subtraction too, so no temporaries are
        created (the hot-path variant the probe scans use with scratch
        buffers).
        """
        np.subtract(ids, self._base, out=out)
        return self._rows.take(out, out=out)

    def compaction_due(self, live_size: int) -> bool:
        """Amortized O(1) removal-path trigger for :meth:`maybe_compact`.

        Counts down so the O(n) compaction attempt runs at most once per
        ``max(256, live_size)`` removals, and only when the allocation
        exceeds 4× the live count (i.e. is mostly tombstones).
        """
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = max(256, live_size)
        return self.slots > 4 * max(64, live_size)

    def maybe_compact(self, ids_by_row: np.ndarray) -> bool:
        """Re-anchor the table to the live id span if that would shrink it.

        ``ids_by_row`` is the owner's live id column (row order); row ``r``
        maps back to ``ids_by_row[r]``.  No-op (returns False) when the
        compacted table would not be smaller than the current allocation.
        """
        if ids_by_row.size == 0:
            if self._rows.shape[0] == 64 and self._base == 0:
                return False
            self.clear()
            return True
        base = int(ids_by_row.min())
        span = int(ids_by_row.max()) - base + 1
        capacity = 64
        while capacity < span:
            capacity *= 2
        if capacity >= self._rows.shape[0]:
            return False
        self._rows = np.full(capacity, -1, dtype=np.int64)
        self._base = base
        self._rows[ids_by_row - base] = np.arange(ids_by_row.shape[0], dtype=np.int64)
        return True

    def clear(self) -> None:
        """Forget every mapping and return to the minimal allocation."""
        self._rows = np.full(64, -1, dtype=np.int64)
        self._base = 0
        self._live = 0


class ScratchBuffers:
    """Grow-only scratch arena killing per-call allocations on hot paths.

    Each key owns one flat buffer that only ever grows (next power of two),
    and :meth:`get` hands back a correctly shaped view into it, so repeated
    searches against an index reuse the same memory instead of allocating
    fresh arrays per call (fresh >128 KiB allocations are mmap-backed and
    page-fault on first touch, which is exactly the tail-latency noise the
    hot path must avoid).  Views are only valid until the next ``get`` with
    the same key; the arena is single-threaded by design — the optional
    thread-parallel probe scan allocates per-task temporaries instead.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict = {}

    def get(self, key: str, shape: "tuple[int, ...]", dtype) -> np.ndarray:
        """An uninitialized ``shape``/``dtype`` view backed by reused storage."""
        size = 1
        for extent in shape:
            size *= int(extent)
        dt = np.dtype(dtype)
        buf = self._bufs.get(key)
        if buf is None or buf.dtype != dt or buf.size < size:
            capacity = max(size, 64)
            capacity = 1 << (capacity - 1).bit_length()
            buf = np.empty(capacity, dtype=dt)
            self._bufs[key] = buf
        return buf[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the arena (diagnostic only)."""
        return int(sum(buf.nbytes for buf in self._bufs.values()))

    def clear(self) -> None:
        """Release every buffer (e.g. after ``clear()`` on the owning index)."""
        self._bufs.clear()


def det_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Deterministic top-``k`` selection: indices of the ``k`` largest scores.

    ``np.argpartition`` breaks ties at the cut value by internal pivot order,
    which differs between otherwise score-identical scan implementations.
    This helper makes the *set* of selected rows a pure function of the score
    values: every row strictly above the cut is taken, and ties at the cut
    are filled lowest-index-first.  The fused and reference ADC scans rank
    duplicate codes with exactly equal scan scores, so running both through
    this selection yields identical candidate sets — the keystone of the
    decision-invariance parity tests.  Returned indices are sorted ascending.
    """
    n = int(scores.shape[0])
    if k >= n:
        return np.arange(n, dtype=np.int64)
    part = np.argpartition(-scores, kth=k - 1)[:k]
    cut = scores[part].min()
    above = np.nonzero(scores > cut)[0]
    ties = np.nonzero(scores == cut)[0]
    sel = np.concatenate([above, ties[: k - above.shape[0]]])
    sel.sort()
    return sel


# Pruning margin: a cell is skipped only when its score upper bound sits more
# than this below the current keff-th best scan score.  Must strictly exceed
# the float32 scan-score arithmetic error (~1e-5 at d ≤ a few hundred), so a
# pruned row provably cannot enter the deterministic top-keff selection.
_PRUNE_EPS = 1e-4
# Inflates the orthogonal term of the bound against float32 rounding of the
# query·centroid score (without it, qc² > 1 by one ulp would zero the term
# while the true orthogonal component is still ~sqrt(2·ulp)).
_QC_SLACK = 1e-4


def cell_bounds(
    centroid_scores: np.ndarray,
    cell_stats: "tuple[np.ndarray, np.ndarray, np.ndarray]",
    scratch: ScratchBuffers,
    key: str,
) -> np.ndarray:
    """Per-(query, cell) upper bounds on any member row's scan score.

    For a unit query ``q``, unit centroid ``c`` and stored row ``u``
    decomposed as ``u = (u·c)·c + r`` with ``r ⊥ c``::

        q·u = (u·c)(q·c) + q·r
            ≤ max(qc·a_max, qc·a_min) + sqrt(1 − qc²)·b_max

    where ``cell_stats = (a_min, a_max, b_max)`` hold each cell's extremes of
    ``u·c`` and its maximum residual norm ``‖r‖``.  The stats stay
    conservative under removals (a stale extreme only widens the bound) and
    are anchored at 0 for cells never updated.  ``_QC_SLACK`` inflates the
    orthogonal term against float32 rounding of ``qc``; callers must keep an
    additional ``_PRUNE_EPS`` margin when comparing float32 scan scores to
    the bound.  All temporaries live in ``scratch`` under ``key``.
    """
    a_min, a_max, b_max = cell_stats
    q, nlist = centroid_scores.shape
    qc = scratch.get(key + ".qc", (q, nlist), np.float64)
    np.copyto(qc, centroid_scores, casting="same_kind")
    t = scratch.get(key + ".t", (q, nlist), np.float64)
    bounds = scratch.get(key + ".bounds", (q, nlist), np.float64)
    np.multiply(qc, a_max[None, :], out=bounds)
    np.multiply(qc, a_min[None, :], out=t)
    np.maximum(bounds, t, out=bounds)
    np.multiply(qc, qc, out=t)
    np.subtract(1.0 + _QC_SLACK, t, out=t)
    np.clip(t, 0.0, None, out=t)
    np.sqrt(t, out=t)
    np.multiply(t, b_max[None, :], out=t)
    np.add(bounds, t, out=bounds)
    return bounds


def probe_scan(
    probe_cells,
    lists: List[Postings],
    row_map: RowMap,
    score_rows,
    cand_ids: np.ndarray,
    cand_rows: np.ndarray,
    cand_scores: np.ndarray,
    kth_buf: np.ndarray,
    keff: int,
    bounds_row: Optional[np.ndarray],
    stop_score: Optional[float],
    stats: dict,
) -> int:
    """One query's probe loop, shared by the IVF and routed-quantized scans.

    Iterates ``probe_cells`` (best-first), gathering each cell's ids/rows
    into the caller's scratch segments and scoring them via ``score_rows``.
    Two terminations ride along:

    * **Exact-bound pruning** (``bounds_row`` set): once ``keff`` candidates
      exist, a cell whose upper bound sits ``_PRUNE_EPS`` below the running
      keff-th best scan score is skipped — provably without changing the
      deterministic top-keff selection, because every row it could have
      contributed scores strictly below the (monotonically non-decreasing)
      cut.  Decision-invariant.
    * **Threshold early stop** (``stop_score`` set): stop probing once the
      running best score reaches ``stop_score``.  Lossy by design (further
      probes could still improve ranks below the best hit), so callers only
      enable it when the consumer admits on a score threshold the best hit
      already cleared.

    Returns the number of candidates written.
    """
    filled = 0
    kth = -np.inf
    best = -np.inf
    for li in probe_cells:
        lst = lists[li]
        c = len(lst)
        if c == 0:
            continue
        if bounds_row is not None and filled >= keff and bounds_row[li] < kth - _PRUNE_EPS:
            stats["probes_pruned"] += 1
            continue
        ids_seg = cand_ids[filled : filled + c]
        ids_seg[:] = lst.view()
        # Canonical (ascending-id) order inside each cell: BLAS gemv per-row
        # results are position-dependent at small shapes, so without this a
        # cell's scores would depend on its insertion/deletion history — and a
        # snapshot-restored index (lists rebuilt in row order) would score
        # the same rows a ulp differently from the live one that wrote it.
        ids_seg.sort()
        rows_view = cand_rows[filled : filled + c]
        row_map.rows_into(ids_seg, rows_view)
        scores_view = cand_scores[filled : filled + c]
        score_rows(rows_view, scores_view)
        filled += c
        stats["probes_scanned"] += 1
        stats["rows_scanned"] += c
        m = float(scores_view.max())
        if m > best:
            best = m
        if stop_score is not None and best >= stop_score:
            stats["early_stops"] += 1
            break
        if bounds_row is not None and filled >= keff:
            kb = kth_buf[:filled]
            kb[:] = cand_scores[:filled]
            kb.partition(filled - keff)
            kth = float(kb[filled - keff])
    return filled


def probe_scan_batched(
    probe_cells,
    lists: List[Postings],
    row_map: RowMap,
    score_rows,
    cand_ids: np.ndarray,
    cand_rows: np.ndarray,
    cand_scores: np.ndarray,
    stats: dict,
) -> int:
    """Single-pass probe scan: every probed cell gathered, then ONE scoring call.

    The routed-quantized hot path.  Once cells are small (a few hundred
    rows), :func:`probe_scan`'s per-cell Python/BLAS dispatch — not the
    arithmetic — is the latency floor, at tens of microseconds per probe.
    When neither threshold early termination nor bound pruning is requested
    there is no per-cell control flow to honour, so this variant
    concatenates every probed cell's ids, translates them to rows once, and
    scores the whole block with a single ``score_rows`` call in ascending
    **row** order.  Row order is the canonical scan order here for two
    reasons: it is reproducible (snapshots preserve row order byte-for-byte,
    so a restored index scores the same rows in the same BLAS positions as
    the live one that wrote it), and it is what makes the gather sequential
    once the owning index has compacted its storage cell-major — the
    difference between a DRAM-latency-bound scan and a bandwidth-bound one.
    Candidate identity is carried by ``cand_rows`` (``cand_ids`` is staging
    only); callers map rows back to ids via their row→id array.  Returns
    the number of candidates written.
    """
    filled = 0
    cells = 0
    for li in probe_cells:
        lst = lists[li]
        c = len(lst)
        if c == 0:
            continue
        cand_ids[filled : filled + c] = lst.view()
        filled += c
        cells += 1
    if filled == 0:
        return 0
    rows = cand_rows[:filled]
    row_map.rows_into(cand_ids[:filled], rows)
    rows.sort()
    score_rows(rows, cand_scores[:filled])
    stats["probes_scanned"] += cells
    stats["rows_scanned"] += filled
    return filled


def probe_scan_threaded(
    probe_cells,
    lists: List[Postings],
    row_map: RowMap,
    score_rows_alloc,
    cand_ids: np.ndarray,
    cand_rows: np.ndarray,
    cand_scores: np.ndarray,
    threads: int,
    stats: dict,
) -> int:
    """Thread-parallel probe scan: all probes scored into disjoint segments.

    Byte-identical output to :func:`probe_scan` without pruning/early-stop
    (each row's score is a per-row dot independent of how the scan is
    partitioned, and both optimizations are result-invariant no-ops), so the
    serial loop remains the reference.  NumPy releases the GIL inside the
    BLAS/gather kernels, so this pays off only on multi-core hosts with
    large ``nprobe``; ``score_rows_alloc`` must be thread-safe (allocate its
    own temporaries — the shared scratch arena is single-threaded).
    """
    from concurrent.futures import ThreadPoolExecutor

    segments = []
    filled = 0
    for li in probe_cells:
        c = len(lists[li])
        if c == 0:
            continue
        segments.append((li, filled, c))
        filled += c
    if not segments:
        return 0

    def scan(seg):
        li, off, c = seg
        ids_seg = cand_ids[off : off + c]
        ids_seg[:] = lists[li].view()
        # Same canonical per-cell order as the serial scan (see probe_scan).
        ids_seg.sort()
        rows = row_map.rows(ids_seg)
        cand_rows[off : off + c] = rows
        score_rows_alloc(rows, cand_scores[off : off + c])

    with ThreadPoolExecutor(max_workers=min(threads, len(segments))) as pool:
        list(pool.map(scan, segments))
    stats["probes_scanned"] += len(segments)
    stats["rows_scanned"] += filled
    return filled


def build_inverted_lists(
    ids: np.ndarray, assign: np.ndarray, nlist: int
) -> "tuple[List[Postings], dict]":
    """Build per-cell inverted lists from a cell assignment, vectorized.

    ``ids[i]`` belongs to cell ``assign[i]``.  Returns the ``nlist``
    :class:`Postings` plus the ``id -> cell`` dict the owning index keeps
    for O(1) removal.  Shared by IVF training/restore and the routed
    quantized backends so the rebuild logic cannot drift between them.
    """
    lists = [Postings() for _ in range(nlist)]
    order = np.argsort(assign, kind="stable")
    sorted_ids = ids[order]
    sorted_assign = assign[order]
    cells = np.arange(nlist)
    starts = np.searchsorted(sorted_assign, cells, side="left")
    ends = np.searchsorted(sorted_assign, cells, side="right")
    for li in range(nlist):
        lists[li].extend(sorted_ids[starts[li] : ends[li]])
    return lists, dict(zip(ids.tolist(), assign.tolist()))


def topk_hits(
    candidate_ids: np.ndarray,
    scores: np.ndarray,
    top_k: int,
    score_threshold: Optional[float],
    max_duplicates: int = 1,
) -> List[IndexHit]:
    """Rank one query's scored candidates into a descending hit list.

    Shared tail of every bucketed search: partial-select the top scores,
    order them, clip float32 rounding back into the valid cosine range and
    apply the optional score floor.

    ``max_duplicates`` is the maximum multiplicity of one id in
    ``candidate_ids`` (LSH probes several tables, so an id can be scored
    once per table).  Selecting ``(top_k − 1) · max_duplicates + 1``
    elements is guaranteed to contain ``top_k`` distinct ids when they
    exist, which lets callers skip a per-query ``np.unique`` over the whole
    candidate set — the dedup happens here, on the handful of winners.
    """
    n = scores.shape[0]
    k = min(top_k if max_duplicates <= 1 else (top_k - 1) * max_duplicates + 1, n)
    top = det_topk(scores, k)
    # Order by (-score, id): exact score ties rank the lower id first, so the
    # final hit list does not depend on candidate order (probe order differs
    # between the fused and reference scan paths).
    sel = top[np.lexsort((candidate_ids[top], -scores[top]))]
    ranked_scores = np.clip(scores[sel], -1.0, 1.0)
    ranked_ids = candidate_ids[sel]
    if score_threshold is not None:
        keep = ranked_scores >= score_threshold
        ranked_scores = ranked_scores[keep]
        ranked_ids = ranked_ids[keep]
    hits: List[IndexHit] = []
    if max_duplicates <= 1:
        for id, score in zip(ranked_ids.tolist(), ranked_scores.tolist()):
            hits.append(IndexHit(id=id, score=score))
        return hits
    seen = set()
    for id, score in zip(ranked_ids.tolist(), ranked_scores.tolist()):
        if id in seen:
            continue
        seen.add(id)
        hits.append(IndexHit(id=id, score=score))
        if len(hits) == top_k:
            break
    return hits
