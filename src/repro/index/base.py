"""Abstract interface of the incremental vector index.

A vector index owns the embedding matrix of a cache: entries are added one at
a time (or in batches) as queries are enrolled, removed when the eviction
policy picks a victim, and searched on every lookup.  The interface is
deliberately id-centric — callers hand the index stable integer ids and get
those same ids back from :meth:`VectorIndex.search`, so the index is free to
reorder rows internally (e.g. swap-with-last deletion) without the caller
ever tracking row positions.

:class:`repro.index.FlatIndex` is the concrete implementation; alternative
backends (IVF, HNSW, a GPU matrix, a sharded remote index) only need to
honour this contract to slot underneath :class:`repro.core.cache.MeanCache`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class IndexHit:
    """One search result: the stored entry's id and its cosine score."""

    id: int
    score: float


class VectorIndex(abc.ABC):
    """Contract for incremental cosine-similarity indexes.

    Implementations must keep ``search`` consistent with brute-force cosine
    similarity over the currently stored vectors (up to floating-point
    tolerance; see ``docs/api.md`` for the float32 note).
    """

    @abc.abstractmethod
    def add(self, vector: np.ndarray, id: Optional[int] = None) -> int:
        """Insert one vector; returns its id (auto-assigned when ``id`` is None)."""

    @abc.abstractmethod
    def add_batch(self, vectors: np.ndarray, ids: Optional[Sequence[int]] = None) -> List[int]:
        """Insert many vectors at once; returns their ids in order."""

    @abc.abstractmethod
    def remove(self, id: int) -> None:
        """Delete one vector by id; raises ``KeyError`` for unknown ids."""

    @abc.abstractmethod
    def search(
        self,
        queries: np.ndarray,
        top_k: int = 5,
        score_threshold: Optional[float] = None,
    ) -> List[List[IndexHit]]:
        """Batched top-k cosine search; one hit list per query row."""

    @abc.abstractmethod
    def rebuild(self, vectors: np.ndarray, ids: Sequence[int]) -> None:
        """Replace the whole index contents (e.g. after re-embedding)."""

    @abc.abstractmethod
    def get(self, id: int) -> np.ndarray:
        """Return the stored (un-normalized) vector for ``id``."""

    @abc.abstractmethod
    def clear(self, reset_ids: bool = True) -> None:
        """Drop every vector; ``reset_ids=False`` keeps auto-ids monotonic.

        ``MeanCache`` relies on both forms (``reset_ids=False`` during
        re-embedding), so backends must honour the parameter.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored vectors."""

    @property
    @abc.abstractmethod
    def dim(self) -> Optional[int]:
        """Vector dimensionality, or None while the index is empty and unset."""

    @property
    @abc.abstractmethod
    def ids(self) -> List[int]:
        """Ids of the stored vectors (internal row order)."""

    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Bytes used by the live rows (matrix + cached norms + ids)."""

    def __contains__(self, id: int) -> bool:
        try:
            self.get(id)
        except KeyError:
            return False
        return True

    #: Whether ``search`` accepts the optional ``stop_score`` keyword
    #: (threshold-aware early termination).  Callers such as
    #: :class:`repro.core.pipeline.IndexRetrieve` check this capability flag
    #: instead of the signature, so backends without the feature (and test
    #: doubles) keep working unchanged.
    supports_stop_score: bool = False

    def maintenance(self) -> Dict[str, object]:
        """Run deferred background work (repartitioning, compaction).

        Backends that defer expensive reorganization off the query path
        (e.g. IVF repartition/retraining with ``auto_repartition=False``)
        perform it here; the serving fleet calls this between batching
        windows.  The base implementation is a no-op.  Returns a small
        summary dict of the work performed (empty when nothing was due).
        """
        return {}

    # ------------------------------------------------------------------ #
    # Snapshot protocol (JSON manifest + per-array .npy persistence)
    # ------------------------------------------------------------------ #
    #: The registry name written into snapshot manifests, or None for
    #: backends that do not support persistence.  Concrete backends either
    #: set a class attribute or expose a property (the quantized backends'
    #: name depends on whether routing is enabled).
    snapshot_backend: Optional[str] = None

    def save(self, path: "str | Path") -> Path:
        """Snapshot the live index state to a directory, atomically.

        Stages a versioned ``manifest.json`` (backend name, constructor
        parameters, scalar state) plus raw per-array ``.npy`` files of the
        live numpy state under ``arrays/``, then publishes the directory
        with one rename; :func:`repro.index.load_index` rebuilds an
        identical index from it (``mmap=True`` adopts the storage matrix
        without copying).  Raises
        :class:`repro.index.snapshot.SnapshotError` for backends without
        snapshot support.
        """
        from repro.index.snapshot import save_index

        return save_index(self, path)

    def _snapshot_params(self) -> Dict[str, object]:
        """Constructor kwargs that rebuild an empty equivalent instance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )

    def _snapshot_state(self) -> Dict[str, object]:
        """JSON-serializable scalar state (next id, training counters, …)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )

    def _snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """The live numpy state, keyed for the snapshot's array files."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )

    def _restore(
        self, state: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Reinstate a snapshot into this (freshly constructed) instance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )
