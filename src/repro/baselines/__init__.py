"""Baseline caching systems the paper compares against."""

from repro.baselines.gptcache import GPTCache, GPTCacheConfig, GPTCacheDecision
from repro.baselines.keyword_cache import KeywordCache, KeywordCacheConfig

__all__ = [
    "GPTCache",
    "GPTCacheConfig",
    "GPTCacheDecision",
    "KeywordCache",
    "KeywordCacheConfig",
]
