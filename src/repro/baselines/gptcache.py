"""GPTCache-style server-side semantic cache (the paper's baseline).

GPTCache (Bang, 2023) keeps a *central* cache of all users' queries and
responses on the server.  A probe is embedded (ALBERT in the paper's
"optimal configuration"), compared against every cached embedding, and served
from the cache when the best cosine similarity reaches a fixed threshold of
0.7.  Relative to MeanCache the baseline therefore:

* uses a fixed, not learned, similarity threshold;
* uses a pretrained, never fine-tuned encoder;
* performs no context-chain verification (contextual probes that merely look
  similar produce false hits);
* stores everything centrally, so even a cache hit costs a network round trip
  and the query leaves the user's device.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.pipeline import (
    DecideStage,
    EncoderEmbed,
    IndexRetrieve,
    LookupPipeline,
    NoContextVerify,
    Probe,
    Selection,
    SimilarityThreshold,
    UnboundedEnroll,
)
from repro.core.storage import object_nbytes
from repro.core.validation import require_query_text, require_query_texts
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.zoo import load_encoder
from repro.index import IndexHit, VectorIndex
from repro.index.registry import resolve_index, validate_backend
from repro.index.snapshot import (
    SnapshotError,
    atomic_snapshot_dir,
    load_index,
    read_arrays,
    read_manifest,
    write_arrays,
    write_manifest,
)

#: Snapshot format tag / version of ``GPTCache.save`` directories.
#: Version 2 writes atomically and stores embeddings as a raw ``.npy`` at
#: the index's native dtype; version 1 (in-place npz, float64) snapshots
#: are still readable.
GPTCACHE_FORMAT = "repro-gptcache"
GPTCACHE_VERSION = 2


@dataclass(frozen=True)
class GPTCacheConfig:
    """Baseline configuration (paper §IV-A: ALBERT encoder, τ = 0.7).

    ``index_backend``/``index_params`` pick the vector-index backend through
    :func:`repro.index.make_index` — a central never-evicting cache is
    exactly where the corpus outgrows exact scans, so the approximate
    backends (``"ivf"``, ``"lsh"``) matter most here.
    """

    similarity_threshold: float = 0.7
    top_k: int = 1
    encoder_name: str = "albert-sim"
    network_rtt_s: float = 0.03
    index_backend: str = "flat"
    index_params: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.network_rtt_s < 0:
            raise ValueError("network_rtt_s must be >= 0")
        validate_backend(self.index_backend)


@dataclass
class GPTCacheDecision:
    """Outcome of one baseline lookup."""

    hit: bool
    query: str
    response: Optional[str] = None
    matched_query: Optional[str] = None
    #: query text of the top retrieved candidate (set on misses too)
    top_candidate_query: Optional[str] = None
    similarity: float = 0.0
    candidates: List[IndexHit] = field(default_factory=list)
    embed_time_s: float = 0.0
    search_time_s: float = 0.0
    network_time_s: float = 0.0
    #: the probe's embedding from the lookup's Embed stage; pass it to
    #: ``insert``/``enroll`` on a miss to skip a second encoder forward.
    embedding: Optional[np.ndarray] = None

    @property
    def total_overhead_s(self) -> float:
        """Measured lookup overhead plus the modelled network round trip."""
        return self.embed_time_s + self.search_time_s + self.network_time_s


@dataclass
class _StoredEntry:
    query: str
    response: str
    embedding: np.ndarray
    user_id: str

    def nbytes(self) -> int:
        return (
            object_nbytes(self.query)
            + object_nbytes(self.response)
            + int(self.embedding.nbytes)
            + object_nbytes(self.user_id)
        )


class GPTCache:
    """Server-side semantic cache with a fixed cosine threshold."""

    def __init__(
        self,
        encoder: Optional[SiameseEncoder] = None,
        config: Optional[GPTCacheConfig] = None,
        index: Optional[VectorIndex] = None,
    ) -> None:
        self.config = config or GPTCacheConfig()
        self.encoder = encoder or load_encoder(self.config.encoder_name)
        self._entries: List[_StoredEntry] = []
        # The baseline never evicts, so index ids coincide with list
        # positions.  An explicit (empty) ``index`` instance wins over the
        # config's backend name — see resolve_index for the shared invariant.
        self._index = resolve_index(
            index, self.config.index_backend, self.config.index_params
        )
        self.lookups = 0
        self.hits = 0
        self.pipeline = self._build_pipeline()

    def _build_pipeline(self) -> LookupPipeline:
        """The shared lookup pipeline, GPTCache flavour.

        Identical Embed/Retrieve/Threshold stages to MeanCache, but the
        ContextVerify stage is dropped (:class:`NoContextVerify` — the
        baseline ignores conversation state, which is what produces its
        context-trap false hits) and enrolment never evicts.
        """
        return LookupPipeline(
            # compress=True mirrors the encoder's encode() default; it is a
            # no-op unless a PCA head is attached to the baseline encoder.
            embed=EncoderEmbed(self.encoder, compress=True),
            retrieve=IndexRetrieve(self._index, top_k=lambda: self.config.top_k),
            threshold=SimilarityThreshold(lambda: self.config.similarity_threshold),
            context_verify=NoContextVerify(),
            decide=_GPTCacheDecide(self),
            enroll=UnboundedEnroll(insert=self.insert),
        )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[_StoredEntry]:
        """All cached entries across every user (central cache)."""
        return list(self._entries)

    @property
    def index(self) -> VectorIndex:
        """The vector index holding the cached query embeddings."""
        return self._index

    def users(self) -> List[str]:
        """Distinct user ids whose queries are stored centrally."""
        return sorted({e.user_id for e in self._entries})

    def embedding_storage_bytes(self) -> int:
        """Bytes used by the stored (float64) embeddings, as in the seed.

        The index's float32 search matrix is separate bookkeeping; inspect
        ``self._index.nbytes`` for its footprint.
        """
        return sum(int(e.embedding.nbytes) for e in self._entries)

    def total_storage_bytes(self) -> int:
        """Bytes used by the whole central cache."""
        return sum(e.nbytes() for e in self._entries)

    # ------------------------------------------------------------------ #
    def embed(self, text: str) -> tuple[np.ndarray, float]:
        """Embed a query with the baseline's (frozen) encoder."""
        start = time.perf_counter()
        emb = self.encoder.encode(text)
        return np.asarray(emb, dtype=np.float64), time.perf_counter() - start

    def insert(
        self,
        query: str,
        response: str,
        user_id: str = "default",
        embedding: Optional[np.ndarray] = None,
    ) -> None:
        """Store a (query, response) pair in the central cache."""
        require_query_text(query)
        if embedding is None:
            embedding, _ = self.embed(query)
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        self._index.add(embedding, id=len(self._entries))
        self._entries.append(
            _StoredEntry(query=query, response=response, embedding=embedding, user_id=user_id)
        )

    def populate(
        self, queries: Sequence[str], responses: Optional[Sequence[str]] = None, user_id: str = "default"
    ) -> None:
        """Bulk-insert queries (pre-loading experiment caches).

        The whole batch is embedded in one encoder call; each embedding is
        then appended to the index in O(1) amortized time.
        """
        if responses is not None and len(responses) != len(queries):
            raise ValueError("responses must align with queries")
        queries = require_query_texts(queries)
        if not queries:
            return
        embeddings = np.atleast_2d(np.asarray(self.encoder.encode(queries), dtype=np.float64))
        for i, query in enumerate(queries):
            response = responses[i] if responses is not None else f"cached response for: {query}"
            self.insert(query, response, user_id=user_id, embedding=embeddings[i])

    def lookup(self, query: str, context: Sequence[str] = (), user_id: str = "default") -> GPTCacheDecision:
        """Hit/miss decision; ``context`` is accepted but ignored (no context handling).

        A single-probe run of the shared lookup pipeline (the ContextVerify
        stage is :class:`~repro.core.pipeline.NoContextVerify`).
        """
        require_query_text(query)
        self.lookups += 1
        return self.pipeline.run_one(query)

    def lookup_batch(
        self,
        queries: Sequence[str],
        user_id: str = "default",
        embeddings: Optional[np.ndarray] = None,
    ) -> List[GPTCacheDecision]:
        """Vectorized equivalent of calling :meth:`lookup` per query in order.

        One encoder call embeds the whole batch and one matmul searches it;
        the measured embed/search wall-clock is split evenly per query.
        ``embeddings`` (one row per query, from this cache's encoder) skips
        the embed call entirely — the serving micro-batcher's amortization
        hook.
        """
        queries = require_query_texts(queries)
        if not queries:
            return []
        self.lookups += len(queries)
        if embeddings is not None:
            embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        return self.pipeline.run(
            [Probe.make(query) for query in queries], reprs=embeddings
        )

    # ------------------------------------------------------------------ #
    # Persistence (versioned, atomically-published snapshot directory)
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Path") -> Path:
        """Snapshot the central cache to a directory (see ``MeanCache.save``).

        Stores the config, hit counters, every entry's texts/user id, the
        embeddings (at the index's native dtype) and the vector index's own
        snapshot.  The write is atomic: the whole directory is staged in a
        ``tmp-`` sibling and renamed into place, so a crash mid-save leaves
        the previous snapshot generation intact.
        """
        path = Path(path)
        meta = [
            {"query": e.query, "response": e.response, "user_id": e.user_id}
            for e in self._entries
        ]
        native = np.dtype(getattr(self._index, "dtype", np.float32))
        if native.kind != "f":
            native = np.dtype(np.float32)
        embeddings = (
            np.stack([e.embedding for e in self._entries]).astype(native, copy=False)
            if self._entries
            else np.zeros((0, self._index.dim or 0), dtype=native)
        )
        config = asdict(self.config)
        config["index_params"] = (
            dict(self.config.index_params) if self.config.index_params else None
        )
        with atomic_snapshot_dir(path) as stage:
            (stage / "entries.json").write_text(
                json.dumps(meta, indent=1) + "\n", encoding="utf-8"
            )
            write_arrays(stage, {"embeddings": embeddings})
            self._index.save(stage / "index")
            write_manifest(
                stage,
                {
                    "format": GPTCACHE_FORMAT,
                    "version": GPTCACHE_VERSION,
                    "config": config,
                    "lookups": int(self.lookups),
                    "hits": int(self.hits),
                    "arrays": ["embeddings"],
                },
            )
        return path

    @classmethod
    def load(
        cls, path: "str | Path", encoder: Optional[SiameseEncoder] = None
    ) -> "GPTCache":
        """Rebuild a central cache from a :meth:`save` snapshot.

        ``encoder`` defaults to the zoo encoder named in the saved config;
        pass the instance the saved cache used when decisions must reproduce
        byte-exactly.
        """
        path = Path(path)
        manifest = read_manifest(path, GPTCACHE_FORMAT, GPTCACHE_VERSION)
        try:
            config = GPTCacheConfig(**manifest["config"])
            lookups = int(manifest["lookups"])
            hits = int(manifest["hits"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot at {path} has a corrupted manifest payload: {exc}"
            ) from exc
        cache = cls(encoder=encoder, config=config)
        cache._index = load_index(path / "index")
        cache.pipeline = cache._build_pipeline()
        try:
            meta = json.loads((path / "entries.json").read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise SnapshotError(f"snapshot at {path} has no entries.json") from exc
        # Keep the stored dtype — version-2 snapshots persist at the index's
        # native dtype (version-1 float64 payloads load as saved).
        embeddings = np.asarray(
            read_arrays(path, expected=["embeddings"])["embeddings"]
        )
        if len(meta) != embeddings.shape[0]:
            raise SnapshotError(
                f"snapshot at {path} is inconsistent: {len(meta)} entry records "
                f"vs {embeddings.shape[0]} embeddings"
            )
        # The baseline never evicts, so index ids must be exactly the list
        # positions — anything else is a corrupted/mixed snapshot.
        if cache._index.ids != list(range(len(meta))):
            raise SnapshotError(
                f"snapshot at {path} is inconsistent: index ids and entry "
                "positions differ"
            )
        cache._entries = [
            _StoredEntry(
                query=record["query"],
                response=record["response"],
                embedding=embedding,
                user_id=record["user_id"],
            )
            for record, embedding in zip(meta, embeddings)
        ]
        cache.lookups = lookups
        cache.hits = hits
        return cache


class _GPTCacheDecide(DecideStage):
    """Decide stage: the fixed-threshold hit rule plus baseline accounting.

    Candidates arrive ranked by descending similarity, so "first admitted
    candidate wins" is exactly the seed's "best candidate clears the fixed
    0.7 threshold" rule.  Every decision carries the modelled network round
    trip — the central cache is remote even on a hit.
    """

    def __init__(self, cache: "GPTCache") -> None:
        self._cache = cache

    def decide(self, selection: Selection) -> GPTCacheDecision:
        cache = self._cache
        top_query = (
            cache._entries[selection.hits[0].id].query if selection.hits else None
        )
        if selection.best is None:
            return GPTCacheDecision(
                hit=False,
                query=selection.probe.query,
                top_candidate_query=top_query,
                similarity=selection.top_score,
                candidates=selection.hits,
                embed_time_s=selection.embed_time_s,
                search_time_s=selection.search_time_s,
                network_time_s=cache.config.network_rtt_s,
                embedding=selection.embedding,
            )
        entry = cache._entries[selection.best.id]
        cache.hits += 1
        return GPTCacheDecision(
            hit=True,
            query=selection.probe.query,
            response=entry.response,
            matched_query=entry.query,
            top_candidate_query=top_query,
            similarity=selection.best.score,
            candidates=selection.hits,
            embed_time_s=selection.embed_time_s,
            search_time_s=selection.search_time_s,
            network_time_s=cache.config.network_rtt_s,
            embedding=selection.embedding,
        )
