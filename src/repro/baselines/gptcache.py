"""GPTCache-style server-side semantic cache (the paper's baseline).

GPTCache (Bang, 2023) keeps a *central* cache of all users' queries and
responses on the server.  A probe is embedded (ALBERT in the paper's
"optimal configuration"), compared against every cached embedding, and served
from the cache when the best cosine similarity reaches a fixed threshold of
0.7.  Relative to MeanCache the baseline therefore:

* uses a fixed, not learned, similarity threshold;
* uses a pretrained, never fine-tuned encoder;
* performs no context-chain verification (contextual probes that merely look
  similar produce false hits);
* stores everything centrally, so even a cache hit costs a network round trip
  and the query leaves the user's device.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.storage import object_nbytes
from repro.embeddings.model import SiameseEncoder
from repro.embeddings.similarity import SearchHit, semantic_search
from repro.embeddings.zoo import load_encoder


@dataclass(frozen=True)
class GPTCacheConfig:
    """Baseline configuration (paper §IV-A: ALBERT encoder, τ = 0.7)."""

    similarity_threshold: float = 0.7
    top_k: int = 1
    encoder_name: str = "albert-sim"
    network_rtt_s: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.network_rtt_s < 0:
            raise ValueError("network_rtt_s must be >= 0")


@dataclass
class GPTCacheDecision:
    """Outcome of one baseline lookup."""

    hit: bool
    query: str
    response: Optional[str] = None
    matched_query: Optional[str] = None
    similarity: float = 0.0
    candidates: List[SearchHit] = field(default_factory=list)
    embed_time_s: float = 0.0
    search_time_s: float = 0.0
    network_time_s: float = 0.0

    @property
    def total_overhead_s(self) -> float:
        """Measured lookup overhead plus the modelled network round trip."""
        return self.embed_time_s + self.search_time_s + self.network_time_s


@dataclass
class _StoredEntry:
    query: str
    response: str
    embedding: np.ndarray
    user_id: str

    def nbytes(self) -> int:
        return (
            object_nbytes(self.query)
            + object_nbytes(self.response)
            + int(self.embedding.nbytes)
            + object_nbytes(self.user_id)
        )


class GPTCache:
    """Server-side semantic cache with a fixed cosine threshold."""

    def __init__(
        self,
        encoder: Optional[SiameseEncoder] = None,
        config: Optional[GPTCacheConfig] = None,
    ) -> None:
        self.config = config or GPTCacheConfig()
        self.encoder = encoder or load_encoder(self.config.encoder_name)
        self._entries: List[_StoredEntry] = []
        self._embeddings: Optional[np.ndarray] = None
        self.lookups = 0
        self.hits = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[_StoredEntry]:
        """All cached entries across every user (central cache)."""
        return list(self._entries)

    def users(self) -> List[str]:
        """Distinct user ids whose queries are stored centrally."""
        return sorted({e.user_id for e in self._entries})

    def embedding_storage_bytes(self) -> int:
        """Bytes used by cached embeddings."""
        return int(self._embeddings.nbytes) if self._embeddings is not None else 0

    def total_storage_bytes(self) -> int:
        """Bytes used by the whole central cache."""
        return sum(e.nbytes() for e in self._entries)

    # ------------------------------------------------------------------ #
    def embed(self, text: str) -> tuple[np.ndarray, float]:
        """Embed a query with the baseline's (frozen) encoder."""
        start = time.perf_counter()
        emb = self.encoder.encode(text)
        return np.asarray(emb, dtype=np.float64), time.perf_counter() - start

    def insert(
        self,
        query: str,
        response: str,
        user_id: str = "default",
        embedding: Optional[np.ndarray] = None,
    ) -> None:
        """Store a (query, response) pair in the central cache."""
        if not isinstance(query, str) or not query.strip():
            raise ValueError("query must be a non-empty string")
        if embedding is None:
            embedding, _ = self.embed(query)
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        self._entries.append(
            _StoredEntry(query=query, response=response, embedding=embedding, user_id=user_id)
        )
        if self._embeddings is None:
            self._embeddings = embedding.reshape(1, -1).copy()
        else:
            self._embeddings = np.vstack([self._embeddings, embedding.reshape(1, -1)])

    def populate(
        self, queries: Sequence[str], responses: Optional[Sequence[str]] = None, user_id: str = "default"
    ) -> None:
        """Bulk-insert queries (pre-loading experiment caches)."""
        if responses is not None and len(responses) != len(queries):
            raise ValueError("responses must align with queries")
        for i, query in enumerate(queries):
            response = responses[i] if responses is not None else f"cached response for: {query}"
            self.insert(query, response, user_id=user_id)

    def lookup(self, query: str, context: Sequence[str] = (), user_id: str = "default") -> GPTCacheDecision:
        """Hit/miss decision; ``context`` is accepted but ignored (no context handling)."""
        if not isinstance(query, str) or not query.strip():
            raise ValueError("query must be a non-empty string")
        self.lookups += 1
        embedding, embed_time = self.embed(query)
        if not self._entries:
            return GPTCacheDecision(
                hit=False,
                query=query,
                embed_time_s=embed_time,
                network_time_s=self.config.network_rtt_s,
            )
        start = time.perf_counter()
        hits = semantic_search(
            embedding, self._embeddings, top_k=min(self.config.top_k, len(self._entries))
        )[0]
        search_time = time.perf_counter() - start
        best = hits[0] if hits else None
        if best is not None and best.score >= self.config.similarity_threshold:
            entry = self._entries[best.index]
            self.hits += 1
            return GPTCacheDecision(
                hit=True,
                query=query,
                response=entry.response,
                matched_query=entry.query,
                similarity=best.score,
                candidates=hits,
                embed_time_s=embed_time,
                search_time_s=search_time,
                network_time_s=self.config.network_rtt_s,
            )
        return GPTCacheDecision(
            hit=False,
            query=query,
            similarity=best.score if best else 0.0,
            candidates=hits,
            embed_time_s=embed_time,
            search_time_s=search_time,
            network_time_s=self.config.network_rtt_s,
        )
