"""Classic keyword/exact-match web cache.

Represents the pre-semantic caching literature the paper surveys (Markatos
2001, Lempel & Moran 2003, Fagni et al. 2006): queries are normalised
(lower-cased, whitespace-collapsed, optionally stop-word-stripped and sorted)
and matched *exactly*.  Such caches cannot detect paraphrases, which is the
motivating failure mode of the paper's introduction, and serve as a floor in
the ablation benchmarks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    AlwaysAdmit,
    CapacityEnroll,
    DecideStage,
    ExactKeyRetrieve,
    KeyEmbed,
    LookupPipeline,
    NoContextVerify,
    Probe,
    Selection,
)
from repro.core.policy import EvictionPolicy, make_policy
from repro.core.validation import require_query_text
from repro.embeddings.tokenizer import DEFAULT_STOPWORDS

_WS_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[^a-z0-9\s]")


@dataclass(frozen=True)
class KeywordCacheConfig:
    """Normalisation and capacity knobs."""

    remove_stopwords: bool = True
    sort_tokens: bool = False
    max_entries: int = 100_000
    eviction_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")


class KeywordCache:
    """Exact-match cache over normalised query strings."""

    def __init__(self, config: Optional[KeywordCacheConfig] = None) -> None:
        self.config = config or KeywordCacheConfig()
        self._data: Dict[str, Tuple[str, str]] = {}  # key -> (query, response)
        self._policy: EvictionPolicy = make_policy(self.config.eviction_policy)
        self._key_ids: Dict[str, int] = {}
        self._id_keys: Dict[int, str] = {}
        self._next_id = 0
        self.lookups = 0
        self.hits = 0
        self.pipeline = self._build_pipeline()

    def _build_pipeline(self) -> LookupPipeline:
        """The shared lookup pipeline, exact-match flavour.

        The semantic caches' Embed/Retrieve stages are swapped for key
        normalisation plus dictionary exact matching; an exact match is
        already binary, so the threshold stage admits everything.
        """
        return LookupPipeline(
            embed=KeyEmbed(self.normalize),
            retrieve=ExactKeyRetrieve(self._key_ids),
            threshold=AlwaysAdmit(),
            context_verify=NoContextVerify(),
            decide=_KeywordDecide(self),
            enroll=CapacityEnroll(
                size=lambda: len(self._data),
                max_entries=lambda: self.config.max_entries,
                evict_one=self._evict_one,
                # Exact matching stores no vectors; context/embedding are
                # accepted (the uniform enroll surface) and ignored.
                insert=lambda query, response, context=(), embedding=None: self.insert(
                    query, response
                ),
            ),
        )

    # ------------------------------------------------------------------ #
    def normalize(self, query: str) -> str:
        """Lower-case, strip punctuation, collapse whitespace, optionally
        drop stop-words and sort tokens."""
        text = _PUNCT_RE.sub(" ", query.lower())
        tokens = _WS_RE.sub(" ", text).strip().split()
        if self.config.remove_stopwords:
            kept = [t for t in tokens if t not in DEFAULT_STOPWORDS]
            if kept:
                tokens = kept
        if self.config.sort_tokens:
            tokens = sorted(tokens)
        return " ".join(tokens)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, query: str) -> bool:
        return self.normalize(query) in self._data

    # ------------------------------------------------------------------ #
    def _evict_one(self) -> None:
        victim = self._policy.select_victim()
        victim_key = self._id_keys.pop(victim)
        self._key_ids.pop(victim_key, None)
        self._data.pop(victim_key, None)
        self._policy.record_remove(victim)

    def insert(self, query: str, response: str) -> None:
        """Store a (query, response) pair under the normalised key."""
        require_query_text(query)
        key = self.normalize(query)
        if key in self._data:
            self._data[key] = (query, response)
            self._policy.record_access(self._key_ids[key])
            return
        self.pipeline.enroll.ensure_capacity()
        entry_id = self._next_id
        self._next_id += 1
        self._data[key] = (query, response)
        self._key_ids[key] = entry_id
        self._id_keys[entry_id] = key
        self._policy.record_insert(entry_id)

    def populate(self, queries: Sequence[str], responses: Optional[Sequence[str]] = None) -> None:
        """Bulk insert."""
        if responses is not None and len(responses) != len(queries):
            raise ValueError("responses must align with queries")
        for i, query in enumerate(queries):
            response = responses[i] if responses is not None else f"cached response for: {query}"
            self.insert(query, response)

    def lookup(self, query: str) -> Optional[str]:
        """Return the cached response for an exact (normalised) match, else None.

        A single-probe run of the shared lookup pipeline with the Retrieve
        stage swapped for exact key matching.
        """
        self.lookups += 1
        return self.pipeline.run_one(query)

    def lookup_batch(self, queries: Sequence[str]) -> List[Optional[str]]:
        """Look up many queries in order (the batched workload entry point).

        Exact-match lookups are already O(1), so unlike the semantic caches
        this is pure convenience: it mirrors ``MeanCache.lookup_batch`` /
        ``GPTCache.lookup_batch`` so workload drivers treat every cache
        uniformly.
        """
        if not queries:
            return []
        self.lookups += len(queries)
        return self.pipeline.run([Probe.make(query) for query in queries])

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0


class _KeywordDecide(DecideStage):
    """Decide stage: map an exact-match selection to the cached response."""

    def __init__(self, cache: "KeywordCache") -> None:
        self._cache = cache

    def decide(self, selection: Selection) -> Optional[str]:
        cache = self._cache
        if selection.best is None:
            return None
        key = cache._id_keys[selection.best.id]
        cache.hits += 1
        cache._policy.record_access(selection.best.id)
        return cache._data[key][1]
