"""The project rules: one class per contract the repo enforces.

Each rule documents the contract it checks and the canonical fix; the
formal statements (and suppression etiquette) live in ``docs/analysis.md``.
Rules scope themselves by package-relative path (``ctx.rel``), so the test
suite can activate any rule on an in-memory snippet by picking its ``rel``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext, Rule

#: Method names whose call mutates (or is otherwise unsafe to run
#: concurrently on) a cache or index object — the serving layer may only
#: reach them under a lock-holding scope.
UNSAFE_CACHE_METHODS = frozenset(
    {
        "insert",
        "enroll",
        "add",
        "add_batch",
        "remove",
        "clear",
        "rebuild",
        "populate",
        "lookup_batch",
        "match",
        "pop",
        "execute",
        "maintenance",
        "register",
        "set_threshold",
    }
)

#: numpy allocators whose per-call use on a hot path re-buys the O(n)
#: copies PRs 1 and 7 eliminated.
HOT_PATH_ALLOCATORS = frozenset(
    {"vstack", "concatenate", "stack", "hstack", "tile", "repeat"}
)

#: Functions that root the lookup/search hot paths (per-module call graphs
#: are chased from these by simple name).
HOT_PATH_ROOTS = frozenset(
    {"search", "search_batch", "lookup", "lookup_batch", "run", "run_one", "match"}
)

#: Global/unseeded RNG entry points on ``np.random``.
NUMPY_GLOBAL_RNG = frozenset(
    {
        "rand",
        "randn",
        "random",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "normal",
        "uniform",
        "standard_normal",
    }
)


def _call_name(node: ast.Call) -> Optional[str]:
    """The called attribute/function's simple name, if syntactically plain."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_lock(node: ast.AST) -> bool:
    """Whether an expression lexically names a lock (``self.lock``, ``_registry_lock``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


def _inside_lock_scope(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``with <...lock...>:`` block."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if _mentions_lock(item.context_expr):
                    return True
    return False


def _inside_atomic_stage(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``with atomic_snapshot_dir(...)`` block."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                for sub in ast.walk(item.context_expr):
                    if (
                        isinstance(sub, ast.Call)
                        and _call_name(sub) == "atomic_snapshot_dir"
                    ):
                        return True
    return False


class ConcurrencyContractRule(Rule):
    """RPL001: locks live in the serving adapter layer, nowhere else.

    The serving contract (``docs/serving.md``): no index backend is
    thread-safe, and the fix is *not* a lock inside the backend — it is the
    server adapter layer (shard locks, the shared-L2 lock, the quantized
    tier's lock).  Two checks:

    * creating a ``threading.Lock``/``RLock``/``Condition``/``Semaphore``
      inside ``repro/index/`` is flagged — a backend growing its own lock
      would tax the single-threaded simulator per call and serialize at the
      wrong granularity;
    * in ``repro/serving/server.py``, calling an unsafe cache/index method
      (:data:`UNSAFE_CACHE_METHODS`) outside a ``with <...>.lock`` scope is
      flagged — server code paths reach caches only through a lock-holding
      scope (``CacheAdapter`` normalization happens *inside* those scopes).
    """

    id = "RPL001"
    name = "concurrency-contract"
    description = (
        "index backends stay lock-free; server code touches caches only "
        "under a shard/tier lock"
    )

    _LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})
    #: Receiver-name segments identifying cache/index-ish objects in server
    #: code; ``self._arrival.clear()`` (an asyncio.Event) stays exempt while
    #: ``shard.executor.execute()`` / ``self.adapter.enroll()`` are checked.
    _CACHE_RECEIVERS = frozenset(
        {"executor", "adapter", "cache", "caches", "index", "indexes",
         "shard", "shards", "l1", "l2", "shared", "tier", "tiers"}
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Apply the index-side and server-side checks where they scope."""
        if ctx.rel.startswith("repro/index/"):
            yield from self._check_index_module(ctx)
        if ctx.rel == "repro/serving/server.py":
            yield from self._check_server_module(ctx)

    def _check_index_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        threading_aliases = _module_aliases(ctx, "threading")
        from_imports = _from_imports(ctx, "threading")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._LOCK_FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id in threading_aliases
            ) or (
                isinstance(func, ast.Name)
                and from_imports.get(func.id) in self._LOCK_FACTORIES
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "index backends must stay lock-free: locks belong to the "
                    "serving adapter layer (shard/tier locks), not to "
                    f"{ctx.rel}",
                )

    def _check_server_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in UNSAFE_CACHE_METHODS:
                continue
            receiver = _dotted(func.value)
            if receiver is None or not (
                {part.lstrip("_") for part in receiver.split(".")}
                & self._CACHE_RECEIVERS
            ):
                continue
            if _inside_lock_scope(ctx, node):
                continue
            enclosing = ctx.enclosing_class(node)
            if enclosing is not None and enclosing.name == "CacheAdapter":
                continue  # the normalization layer runs inside its callers' locks
            yield ctx.finding(
                self.id,
                node,
                f"call to unsafe cache/index method .{func.attr}() outside a "
                "lock-holding scope — wrap in `with <shard|tier>.lock:` "
                "(docs/serving.md concurrency contract)",
            )


class DeterminismRule(Rule):
    """RPL002: no wall-clock or global-RNG reads in library code.

    The virtual-clock discipline (PR 8's two-clocks fix): everything a
    replay or benchmark decision depends on flows through an injected clock
    (:mod:`repro.core.clock`) or a seeded generator.  Flags calls to
    ``time.time()``, ``datetime.now()/utcnow()/today()``, the ``np.random``
    global generator, the stdlib ``random`` module, and *unseeded*
    ``np.random.default_rng()``.  ``time.perf_counter``/``time.monotonic``
    stay legal: measuring how long work took is not a determinism input —
    stamping *state* with wall time is.
    """

    id = "RPL002"
    name = "determinism"
    description = "wall time via injected clocks only; RNG via seeded generators only"

    _DATETIME_FACTORIES = frozenset({"now", "utcnow", "today", "fromtimestamp"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag wall-clock and global-RNG call sites in the module."""
        time_aliases = _module_aliases(ctx, "time")
        random_aliases = _module_aliases(ctx, "random")
        datetime_mod_aliases = _module_aliases(ctx, "datetime")
        time_from = _from_imports(ctx, "time")
        datetime_from = _from_imports(ctx, "datetime")
        numpy_aliases = _module_aliases(ctx, "numpy") | {"np"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted(func)
            # time.time() (or a from-imported alias of it)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ) or (isinstance(func, ast.Name) and time_from.get(func.id) == "time"):
                yield ctx.finding(
                    self.id,
                    node,
                    "time.time() in library code — take an injected clock "
                    "(repro.core.clock) so virtual-time replays stay deterministic",
                )
                continue
            # datetime.now()/utcnow()/today() on the datetime class or module
            if isinstance(func, ast.Attribute) and func.attr in self._DATETIME_FACTORIES:
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and (
                        datetime_from.get(base.id) == "datetime"
                        or base.id in datetime_mod_aliases
                    )
                ) or (
                    isinstance(base, ast.Attribute)
                    and base.attr == "datetime"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in datetime_mod_aliases
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"datetime.{func.attr}() reads the wall clock — thread "
                        "time through an injected clock instead",
                    )
                    continue
            # np.random.* global generator / unseeded default_rng()
            if dotted is not None:
                parts = dotted.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in numpy_aliases
                    and parts[1] == "random"
                ):
                    if parts[2] == "default_rng" and not node.args and not node.keywords:
                        yield ctx.finding(
                            self.id,
                            node,
                            "unseeded np.random.default_rng() — pass an explicit "
                            "seed parameter so runs reproduce",
                        )
                        continue
                    if parts[2] in NUMPY_GLOBAL_RNG:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"np.random.{parts[2]}() uses the process-global RNG — "
                            "use a seeded np.random.default_rng(seed) generator",
                        )
                        continue
                if len(parts) == 2 and parts[0] in random_aliases:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"random.{parts[1]}() uses the process-global RNG — "
                        "use a seeded np.random.default_rng(seed) generator",
                    )


class HotPathAllocationRule(Rule):
    """RPL003: no per-call array stitching on lookup/search hot paths.

    PR 1 removed the seed's per-insert ``np.vstack`` rebuilds and PR 7
    removed per-query scratch allocation; this rule keeps them out.  Within
    index modules and the core lookup pipeline, functions reachable (by
    simple-name call chasing, per module) from the hot roots
    (:data:`HOT_PATH_ROOTS`) must not call the numpy allocators in
    :data:`HOT_PATH_ALLOCATORS`.  Bounded small-k chunk stitching that is
    genuinely per-*batch* (not per-entry) may be suppressed inline with a
    justification.
    """

    id = "RPL003"
    name = "hot-path-allocation"
    description = "no np.vstack/np.concatenate per call in search/lookup hot paths"

    _SCOPES = ("repro/index/", "repro/core/pipeline.py", "repro/core/cache.py",
               "repro/core/tiered.py", "repro/baselines/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Chase the module call graph from hot roots; flag allocators."""
        if not ctx.rel.startswith(self._SCOPES):
            return
        functions: Dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        # Per-module reachability by simple name from the hot roots.
        reachable: Set[str] = set()
        frontier = [name for name in functions if name in HOT_PATH_ROOTS]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for sub in ast.walk(functions[name]):
                if isinstance(sub, ast.Call):
                    callee = _call_name(sub)
                    if callee in functions and callee not in reachable:
                        frontier.append(callee)
        for name in sorted(reachable):
            for sub in ast.walk(functions[name]):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in HOT_PATH_ALLOCATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                ):
                    yield ctx.finding(
                        self.id,
                        sub,
                        f"np.{func.attr}() inside {name}() which is reachable "
                        "from a lookup/search hot path — reuse a scratch "
                        "buffer or move the allocation off the query path",
                    )


class SnapshotDisciplineRule(Rule):
    """RPL004: persistence code writes only through the atomic staging helpers.

    The crash-safety contract (PR 9, ``repro/index/snapshot.py``): snapshot
    bytes reach disk either inside a ``with atomic_snapshot_dir(...)`` stage
    (fsync + ``os.replace`` publish) or through the append-only delta-log
    commit protocol.  In persistence code (``repro/index/``, ``repro/core/``,
    ``repro/baselines/``, ``repro/serving/fleet.py``), any direct
    ``open(..., "w"/"wb")``, ``np.save*`` or ``Path.write_text/write_bytes``
    outside those scopes is flagged.
    """

    id = "RPL004"
    name = "snapshot-io-discipline"
    description = "snapshot writes go through atomic_snapshot_dir / the delta-log protocol"

    _SCOPES = ("repro/index/", "repro/core/", "repro/baselines/", "repro/serving/fleet.py")
    #: snapshot.py functions that *are* the write protocol (hand-reviewed:
    #: write_* target a stage, append_delta is the documented commit point).
    _HELPER_FUNCTIONS = frozenset({"write_manifest", "write_arrays", "append_delta"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag direct file writes outside the atomic staging protocol."""
        if not ctx.rel.startswith(self._SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            description = self._write_call(node)
            if description is None:
                continue
            if _inside_atomic_stage(ctx, node):
                continue
            enclosing = ctx.enclosing_function(node)
            if (
                ctx.rel == "repro/index/snapshot.py"
                and enclosing is not None
                and enclosing.name in self._HELPER_FUNCTIONS
            ):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"{description} outside an atomic snapshot stage — route "
                "persistence through atomic_snapshot_dir()/write_arrays()/"
                "append_delta() (crash-safety contract, docs/analysis.md)",
            )

    @staticmethod
    def _write_call(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open" and len(node.args) >= 2:
            mode = node.args[1]
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                if mode.value.startswith(("w", "x")):
                    return f'open(..., "{mode.value}")'
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in ("save", "savez", "savez_compressed") and isinstance(
                func.value, ast.Name
            ) and func.value.id in ("np", "numpy"):
                return f"np.{func.attr}()"
            if func.attr in ("write_text", "write_bytes"):
                return f".{func.attr}()"
        return None


class PublicApiHygieneRule(Rule):
    """RPL005: exported symbols carry docstrings and type annotations.

    Public (non-underscore) module-level classes and functions, and public
    methods of public classes, must have a docstring; public module-level
    functions must additionally annotate every plain parameter and the
    return type.  ``__init__`` participates in the annotation check via its
    parameters (its return is always ``None`` and not required).
    """

    id = "RPL005"
    name = "public-api-hygiene"
    description = "docstrings + annotations on exported symbols"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Check docstrings/annotations on the module's exported symbols."""
        if ctx.rel.endswith("__main__.py"):
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from self._check_class(ctx, node)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and not node.name.startswith("_"):
                yield from self._check_function(ctx, node, qual=node.name, annotations=True)

    def _check_class(self, ctx: ModuleContext, node: ast.ClassDef) -> Iterator[Finding]:
        if ast.get_docstring(node) is None:
            yield ctx.finding(
                self.id, node, f"public class {node.name} is missing a docstring"
            )
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if member.name.startswith("_"):
                    continue
                yield from self._check_function(
                    ctx, member, qual=f"{node.name}.{member.name}", annotations=False
                )

    def _check_function(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        qual: str,
        annotations: bool,
    ) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if ast.get_docstring(node) is None:
            yield ctx.finding(
                self.id, node, f"public function {qual} is missing a docstring"
            )
        if not annotations:
            return
        args = node.args
        plain = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        missing = [
            arg.arg
            for arg in plain
            if arg.annotation is None and arg.arg not in ("self", "cls")
        ]
        if missing:
            yield ctx.finding(
                self.id,
                node,
                f"public function {qual} is missing parameter annotations: "
                + ", ".join(missing),
            )
        if node.returns is None:
            yield ctx.finding(
                self.id,
                node,
                f"public function {qual} is missing a return annotation",
            )


def _module_aliases(ctx: ModuleContext, module: str) -> Set[str]:
    """Local names bound to ``import module`` (including ``as`` aliases)."""
    aliases: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(ctx: ModuleContext, module: str) -> Dict[str, str]:
    """Local name -> original name for ``from module import ...`` bindings."""
    bound: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                bound[alias.asname or alias.name] = alias.name
    return bound


#: The registered project rules, in id order.
PROJECT_RULES: Tuple[type, ...] = (
    ConcurrencyContractRule,
    DeterminismRule,
    HotPathAllocationRule,
    SnapshotDisciplineRule,
    PublicApiHygieneRule,
)
