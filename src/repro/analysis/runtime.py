"""Opt-in runtime lock-order and index-ownership checking.

Static rules (RPL001) catch lexically-visible contract breaks; this module
catches the dynamic ones.  When ``REPRO_DEBUG_CONCURRENCY=1`` is set the
serving tier's locks are created as :class:`TrackedLock` instances and
caches handed to the server are wrapped by :func:`guard_cache`, giving two
checks at *test* time with zero overhead in production (the env var is read
once per lock-construction site, and untracked paths keep plain
``threading.Lock`` objects):

* **lock order** — every acquisition records an edge ``held -> acquired``
  in a process-wide graph; an edge that closes a cycle means two threads
  can deadlock, and raises :class:`LockCycleError` immediately instead of
  hanging a test;
* **ownership** — mutating methods of an instrumented index
  (``add``/``add_batch``/``remove``/``clear``/``rebuild``/``search``) raise
  :class:`LockOwnershipError` when invoked while the owning tracked lock is
  not held by the calling thread.

The thread-hammer suites (``tests/test_serving_concurrency.py``,
``tests/test_tiered.py``) re-run under the flag in CI; see
``docs/analysis.md`` for the contract statements.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "LockDisciplineError",
    "LockCycleError",
    "LockOwnershipError",
    "TrackedLock",
    "debug_enabled",
    "maybe_tracked_lock",
    "maybe_tracked_rlock",
    "guard_index",
    "guard_cache",
    "reset_registry",
]

ENV_FLAG = "REPRO_DEBUG_CONCURRENCY"

#: Index methods that mutate backend state (or, like ``search``, read state
#: that a concurrent mutation would corrupt) and therefore require the
#: owning lock.
GUARDED_INDEX_METHODS: Tuple[str, ...] = (
    "add",
    "add_batch",
    "remove",
    "clear",
    "rebuild",
    "search",
)


def debug_enabled() -> bool:
    """Whether runtime concurrency checking is switched on via the env flag."""
    return os.environ.get(ENV_FLAG, "").strip() in ("1", "true", "yes", "on")


class LockDisciplineError(RuntimeError):
    """Base class for runtime concurrency-contract violations."""


class LockCycleError(LockDisciplineError):
    """A lock acquisition closed a cycle in the process-wide order graph."""


class LockOwnershipError(LockDisciplineError):
    """An instrumented index was touched without its owning lock held."""


class _LockRegistry:
    """Process-wide acquisition-order graph shared by all tracked locks.

    Edges are ``held_lock_name -> newly_acquired_lock_name`` pairs observed
    at acquire time.  The graph is tiny (one node per named lock), so a
    fresh DFS per *new* edge is cheap; known edges skip the walk entirely.
    """

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._local = threading.local()

    def _held_stack(self) -> List["TrackedLock"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_names(self) -> Tuple[str, ...]:
        """Names of tracked locks currently held by the calling thread."""
        return tuple(lock.name for lock in self._held_stack())

    def notify_acquired(self, lock: "TrackedLock") -> None:
        stack = self._held_stack()
        if stack and stack[-1] is not lock:
            self._record_edge(stack[-1].name, lock.name)
        stack.append(lock)

    def notify_released(self, lock: "TrackedLock") -> None:
        stack = self._held_stack()
        # Releases may interleave out of LIFO order under condition waits;
        # remove the most recent matching entry rather than asserting order.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    def _record_edge(self, src: str, dst: str) -> None:
        if src == dst:
            return
        with self._graph_lock:
            successors = self._edges.setdefault(src, set())
            if dst in successors:
                return
            cycle = self._find_path(dst, src)
            if cycle is not None:
                raise LockCycleError(
                    "lock-order cycle: acquiring "
                    f"{dst!r} while holding {src!r} inverts the established "
                    "order " + " -> ".join(cycle + [dst]) + " — potential deadlock"
                )
            successors.add(dst)

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """DFS path src..dst in the edge graph, or None (caller holds _graph_lock)."""
        path: List[str] = []
        seen: Set[str] = set()

        def dfs(node: str) -> bool:
            if node == dst:
                path.append(node)
                return True
            if node in seen:
                return False
            seen.add(node)
            for nxt in self._edges.get(node, ()):
                if dfs(nxt):
                    path.append(node)
                    return True
            return False

        if dfs(src):
            return list(reversed(path))
        return None

    def reset(self) -> None:
        with self._graph_lock:
            self._edges.clear()


_REGISTRY = _LockRegistry()


def reset_registry() -> None:
    """Clear the process-wide acquisition graph (test isolation helper)."""
    _REGISTRY.reset()


class TrackedLock:
    """A named lock recording acquisitions in the process-wide order graph.

    Drop-in for ``threading.Lock``/``threading.RLock`` in the serving
    layer: supports the context-manager protocol plus explicit
    ``acquire``/``release``.  Non-reentrant tracked locks raise
    :class:`LockDisciplineError` on same-thread re-acquisition (a plain
    ``threading.Lock`` would silently deadlock there).
    """

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._owner: Optional[int] = None
        self._depth = 0
        self._meta = threading.Lock()

    def held_by_current_thread(self) -> bool:
        """Whether the calling thread currently owns this lock."""
        with self._meta:
            return self._owner == threading.get_ident()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire, recording the order edge; mirrors ``threading.Lock.acquire``."""
        me = threading.get_ident()
        with self._meta:
            if self._owner == me and not self.reentrant:
                raise LockDisciplineError(
                    f"non-reentrant lock {self.name!r} re-acquired by the "
                    "owning thread — would deadlock under threading.Lock"
                )
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired:
            return False
        with self._meta:
            first = self._depth == 0
            self._owner = me
            self._depth += 1
        if first:
            _REGISTRY.notify_acquired(self)
        return True

    def release(self) -> None:
        """Release; clears ownership bookkeeping on the outermost release."""
        me = threading.get_ident()
        with self._meta:
            if self._owner != me:
                raise LockDisciplineError(
                    f"lock {self.name!r} released by a thread that does not own it"
                )
            self._depth -= 1
            last = self._depth == 0
            if last:
                self._owner = None
        if last:
            _REGISTRY.notify_released(self)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r}, reentrant={self.reentrant})"


def maybe_tracked_lock(name: str) -> Any:
    """A ``TrackedLock`` under ``REPRO_DEBUG_CONCURRENCY=1``, else ``threading.Lock()``."""
    if debug_enabled():
        return TrackedLock(name, reentrant=False)
    return threading.Lock()


def maybe_tracked_rlock(name: str) -> Any:
    """A reentrant ``TrackedLock`` under the flag, else ``threading.RLock()``."""
    if debug_enabled():
        return TrackedLock(name, reentrant=True)
    return threading.RLock()


def _ownership_wrapper(
    method: Callable[..., Any], lock: TrackedLock, label: str
) -> Callable[..., Any]:
    def wrapped(*args: Any, **kwargs: Any) -> Any:
        if not lock.held_by_current_thread():
            raise LockOwnershipError(
                f"{label} called without holding its owning lock "
                f"{lock.name!r} (held: {list(_REGISTRY.held_names()) or 'none'}) "
                "— serving code must reach indexes inside the shard/tier lock"
            )
        return method(*args, **kwargs)

    wrapped.__name__ = getattr(method, "__name__", label)
    wrapped._repro_guard = True  # type: ignore[attr-defined]
    return wrapped


def guard_index(index: Any, lock: Any, label: str = "index") -> Any:
    """Instrument ``index`` so mutators require ``lock`` to be held.

    Wraps :data:`GUARDED_INDEX_METHODS` as *instance* attributes (bound
    wrappers), leaving the class untouched — other instances of the same
    backend stay unguarded.  No-op (returns ``index`` unchanged) when
    ``lock`` is not a :class:`TrackedLock`, so call sites don't need their
    own env-flag checks.  Idempotent per instance.
    """
    if not isinstance(lock, TrackedLock) or index is None:
        return index
    if getattr(index, "_repro_guarded", False):
        return index
    for name in GUARDED_INDEX_METHODS:
        method = getattr(index, name, None)
        if method is None or getattr(method, "_repro_guard", False):
            continue
        try:
            setattr(index, name, _ownership_wrapper(method, lock, f"{label}.{name}()"))
        except AttributeError:  # __slots__ or frozen instances: skip quietly
            return index
    try:
        index._repro_guarded = True
    except AttributeError:
        pass
    return index


def guard_cache(cache: Any, lock: Any, label: str = "cache") -> Any:
    """Instrument the index backend(s) reachable from ``cache``.

    Covers ``cache.index`` (MeanCache-style) and, for tiered caches, the
    L1's index plus the quantized tier guarded by its *own* lock.  Safe to
    call on any object; attributes that don't exist are skipped.
    """
    if not isinstance(lock, TrackedLock) or cache is None:
        return cache
    index = getattr(cache, "index", None)
    if index is not None:
        guard_index(index, lock, f"{label}.index")
    l1 = getattr(cache, "l1", None)
    if l1 is not None:
        inner = getattr(l1, "index", None)
        if inner is not None:
            guard_index(inner, lock, f"{label}.l1.index")
    l2 = getattr(cache, "l2", None)
    if l2 is not None:
        l2_lock = getattr(l2, "lock", None)
        if isinstance(l2_lock, TrackedLock):
            guard_index(l2, l2_lock, f"{label}.l2")
    return cache
