"""Project-specific static analysis + runtime lock-discipline checking.

The repo carries three load-bearing contracts that used to exist only as
prose (``docs/serving.md``, ``docs/analysis.md``):

* the **concurrency contract** — no index backend is thread-safe; locks
  live in the serving adapter layer (shard locks, the shared-L2 lock,
  the quantized tier's own lock);
* the **determinism discipline** — library code never reads wall time or
  global RNG state directly; time flows through injected clocks
  (:mod:`repro.core.clock`) and randomness through seeded generators;
* the **crash-safety discipline** — persistence code writes snapshots only
  through the atomic staging helpers in :mod:`repro.index.snapshot`.

This package turns those contracts into checked code:

* :mod:`repro.analysis.engine` — a reusable AST-based lint engine (rule
  registry, ``# repro: ignore[rule-id]`` suppressions, JSON/text
  reporters, committed-baseline support);
* :mod:`repro.analysis.rules` — the project rules RPL001..RPL005;
* :mod:`repro.analysis.runtime` — the opt-in (``REPRO_DEBUG_CONCURRENCY=1``)
  runtime lock-order and index-ownership tracker the thread-hammer suites
  run under.

Run the engine locally with ``python -m repro.analysis src/repro``; the
committed baseline lives at ``src/repro/analysis/baseline.json``.
"""

from repro.analysis.engine import (
    AnalysisEngine,
    Baseline,
    Finding,
    ModuleContext,
    Report,
    Rule,
    default_rules,
)
from repro.analysis.runtime import (
    LockCycleError,
    LockDisciplineError,
    LockOwnershipError,
    TrackedLock,
    debug_enabled,
    guard_cache,
    guard_index,
    maybe_tracked_lock,
    maybe_tracked_rlock,
    reset_registry,
)

__all__ = [
    "AnalysisEngine",
    "Baseline",
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "default_rules",
    "LockCycleError",
    "LockDisciplineError",
    "LockOwnershipError",
    "TrackedLock",
    "debug_enabled",
    "guard_cache",
    "guard_index",
    "maybe_tracked_lock",
    "maybe_tracked_rlock",
    "reset_registry",
]
