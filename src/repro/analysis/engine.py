"""The reusable AST lint engine under the project rules.

The engine is deliberately small and dependency-free: a rule is an object
with an ``id`` and a ``check(ctx)`` generator over :class:`Finding`s, a
module is parsed once into a :class:`ModuleContext` shared by every rule,
and three orthogonal mechanisms decide what a run reports:

* **suppressions** — a ``# repro: ignore[RPL002]`` comment on the finding's
  line (or on a comment-only line directly above it) silences that rule
  there; ``# repro: ignore`` with no bracket silences every rule on the
  line.  Suppressions are for *individually reviewed* exceptions and should
  carry a justification in the surrounding comment (see
  ``docs/analysis.md``).
* **baseline** — a committed JSON file of fingerprinted pre-existing
  findings (:class:`Baseline`).  A finding whose ``(rule, path, message)``
  fingerprint appears in the baseline is reported as *baselined*, not new,
  so the CI gate fails only on regressions.  Fingerprints carry no line
  numbers: moving code around does not invalidate the baseline, changing
  the offending construct does.
* **reporters** — :meth:`Report.to_text` for humans, :meth:`Report.to_json`
  for tooling.

``AnalysisEngine.run_source`` exists so the test suite can feed the rules
known-violation / known-clean snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Name of the committed baseline file, discovered by walking up from the
#: scanned paths (and shipped inside the package for `-m repro.analysis`).
BASELINE_NAME = "baseline.json"

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s-]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleContext:
    """One parsed module shared by every rule: source, AST, parent links."""

    def __init__(self, path: str, source: str, rel: Optional[str] = None) -> None:
        self.path = path
        #: package-relative posix path (e.g. ``repro/core/cache.py``) — the
        #: thing rules scope on, and the path recorded in findings so
        #: baselines survive checkouts at different absolute locations.
        self.rel = rel if rel is not None else _package_rel(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The node's syntactic parent (None for the module node)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost enclosing (async) function definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """The innermost enclosing class definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=rule,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether an ignore comment covers the finding's line.

        Matches ``# repro: ignore[RPL00x]`` (one or more comma-separated
        rule ids) on the finding's own line, or on a comment-only line
        directly above it (for lines too long to carry the comment).
        """
        for lineno in (finding.line, finding.line - 1):
            if not 1 <= lineno <= len(self.lines):
                continue
            text = self.lines[lineno - 1]
            if lineno != finding.line and not text.lstrip().startswith("#"):
                continue
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            if match.group(1) is None:
                return True
            rules = {part.strip() for part in match.group(1).split(",")}
            if finding.rule in rules:
                return True
        return False


class Rule:
    """Base class for project rules: an id, a summary, a check generator."""

    id: str = "RPL000"
    name: str = "base-rule"
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (called once per analyzed file)."""
        raise NotImplementedError


class Baseline:
    """A committed set of fingerprinted pre-existing findings.

    Stored as JSON: ``{"version": 1, "findings": [{"rule", "path",
    "message", "count"}, ...]}``.  ``count`` allows the same fingerprint to
    occur more than once in a file (e.g. two unannotated overloads with an
    identical message); occurrences beyond the baselined count are new.
    """

    def __init__(self, counts: Optional[Dict[Tuple[str, str, str], int]] = None) -> None:
        self.counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        counts: Dict[Tuple[str, str, str], int] = {}
        for record in data.get("findings", []):
            key = (str(record["rule"]), str(record["path"]), str(record["message"]))
            counts[key] = counts.get(key, 0) + int(record.get("count", 1))
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline exactly the given findings (the ``--write-baseline`` path)."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
        return cls(counts)

    def save(self, path: "str | Path") -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        records = [
            {"rule": rule, "path": rel, "message": message, "count": count}
            for (rule, rel, message), count in sorted(self.counts.items())
        ]
        Path(path).write_text(
            json.dumps({"version": 1, "findings": records}, indent=1) + "\n",
            encoding="utf-8",
        )

    def split(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined)."""
        remaining = dict(self.counts)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            left = remaining.get(finding.fingerprint, 0)
            if left > 0:
                remaining[finding.fingerprint] = left - 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old


@dataclass
class Report:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0

    @property
    def ok(self) -> bool:
        """True when no *new* (non-baselined, non-suppressed) findings exist."""
        return not self.findings

    def to_text(self) -> str:
        """Human-readable report (one line per new finding + a summary)."""
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files} file(s) "
            f"({len(self.baselined)} baselined, {self.suppressed} suppressed)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report."""
        return json.dumps(
            {
                "ok": self.ok,
                "files": self.files,
                "suppressed": self.suppressed,
                "baselined": len(self.baselined),
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                    }
                    for f in self.findings
                ],
            },
            indent=1,
        )


class AnalysisEngine:
    """Dispatches every registered rule over a set of modules."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            rules = default_rules()
        self.rules: List[Rule] = list(rules)
        ids = [rule.id for rule in self.rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids: {ids}")

    def rule(self, rule_id: str) -> Rule:
        """The registered rule with ``rule_id`` (KeyError when absent)."""
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(f"no rule {rule_id!r} registered")

    # ------------------------------------------------------------------ #
    def check_module(self, ctx: ModuleContext) -> Tuple[List[Finding], int]:
        """(kept findings, suppressed count) for one parsed module."""
        kept: List[Finding] = []
        suppressed = 0
        for rule in self.rules:
            for finding in rule.check(ctx):
                if ctx.suppressed(finding):
                    suppressed += 1
                else:
                    kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept, suppressed

    def run_source(
        self, source: str, rel: str = "repro/_snippet_.py"
    ) -> List[Finding]:
        """Analyze an in-memory snippet as if it lived at ``rel``.

        The fixture-test entry point: ``rel`` controls which scoped rules
        apply (e.g. ``repro/index/flat.py`` activates the index-side
        checks).  Suppression comments in the snippet are honoured;
        baselines are not consulted.
        """
        ctx = ModuleContext(path=rel, source=source, rel=rel)
        findings, _suppressed = self.check_module(ctx)
        return findings

    def run_paths(
        self,
        paths: Sequence["str | Path"],
        baseline: Optional[Baseline] = None,
    ) -> Report:
        """Analyze every ``*.py`` file under ``paths`` (files or directories)."""
        report = Report()
        for file in iter_python_files(paths):
            try:
                source = file.read_text(encoding="utf-8")
                ctx = ModuleContext(path=str(file), source=source)
            except (OSError, SyntaxError, ValueError) as exc:
                report.findings.append(
                    Finding(
                        rule="RPL000",
                        path=_package_rel(str(file)),
                        line=1,
                        col=0,
                        message=f"unreadable or unparsable module: {exc}",
                    )
                )
                report.files += 1
                continue
            findings, suppressed = self.check_module(ctx)
            report.findings.extend(findings)
            report.suppressed += suppressed
            report.files += 1
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        if baseline is not None:
            report.findings, report.baselined = baseline.split(report.findings)
        return report


def iter_python_files(paths: Sequence["str | Path"]) -> Iterator[Path]:
    """Every ``*.py`` file under the given files/directories, sorted."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            if "__pycache__" in file.parts:
                continue
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield file


def _package_rel(path: str) -> str:
    """Posix path relative to the ``repro`` package root when possible."""
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return Path(path).name


def find_baseline(paths: Sequence["str | Path"]) -> Optional[Path]:
    """Locate the committed baseline near the scanned paths.

    Looks for ``baseline.json`` inside a scanned ``repro/analysis``
    directory first (the committed location), then walks each path's
    ancestors for a ``.repro-analysis-baseline.json`` (an out-of-tree
    override for downstream checkouts).
    """
    for raw in paths:
        candidate = Path(raw)
        if candidate.is_dir():
            packaged = candidate / "analysis" / BASELINE_NAME
            if packaged.is_file():
                return packaged
            packaged = candidate / "repro" / "analysis" / BASELINE_NAME
            if packaged.is_file():
                return packaged
    for raw in paths:
        for ancestor in [Path(raw)] + list(Path(raw).resolve().parents):
            override = ancestor / ".repro-analysis-baseline.json"
            if override.is_file():
                return override
    return None


def default_rules() -> List[Rule]:
    """The registered project rules, in id order."""
    from repro.analysis.rules import PROJECT_RULES

    return [cls() for cls in PROJECT_RULES]
