"""CLI for the project lint engine.

Usage::

    python -m repro.analysis src/repro              # text report, exit 1 on new findings
    python -m repro.analysis src/repro --json       # machine-readable report
    python -m repro.analysis src/repro --no-baseline
    python -m repro.analysis src/repro --write-baseline   # refresh baseline.json

With no ``--baseline`` argument the committed baseline is auto-discovered
(``src/repro/analysis/baseline.json``); ``--write-baseline`` rewrites it
from the current findings — review the diff before committing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import (
    BASELINE_NAME,
    AnalysisEngine,
    Baseline,
    find_baseline,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the engine over the given paths; return the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (rules RPL001..RPL005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="explicit baseline file (default: auto-discover the committed one)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    args = parser.parse_args(argv)

    engine = AnalysisEngine()
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        baseline_path = args.baseline or find_baseline(args.paths)
    baseline = Baseline.load(baseline_path) if baseline_path is not None else None

    if args.write_baseline:
        report = engine.run_paths(args.paths, baseline=None)
        target = args.baseline or baseline_path or Path(__file__).parent / BASELINE_NAME
        Baseline.from_findings(report.findings).save(target)
        print(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0

    report = engine.run_paths(args.paths, baseline=baseline)
    print(report.to_json() if args.json else report.to_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
