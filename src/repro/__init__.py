"""Reproduction of *MeanCache: User-Centric Semantic Caching for LLM Web Services*.

The package is organised as a set of substrates plus the core contribution:

``repro.embeddings``
    Trainable siamese sentence-embedding models (NumPy), losses, optimizers,
    PCA compression and vectorized cosine similarity search.
``repro.federated``
    A from-scratch synchronous federated-learning framework (FedAvg/FedProx,
    client sampling, threshold aggregation, simulation harness).
``repro.llm``
    A simulated LLM web service with a calibrated latency model.
``repro.datasets``
    Deterministic synthetic datasets: duplicate-query pairs, contextual
    conversations, user-study logs and federated partitioning.
``repro.baselines``
    GPTCache-style server-side semantic cache and a keyword-matching cache.
``repro.core``
    MeanCache itself: the user-side semantic cache with context-chain
    verification, adaptive thresholds, PCA-compressed embeddings, eviction
    policies, persistent storage, and the shared composable lookup pipeline
    (``repro.core.pipeline``) every cache variant runs on.
``repro.serving``
    Multi-client serving: deterministic fleet workload generation, the
    fleet simulator (N per-user caches against one shared service) and
    JSON traffic replay.
``repro.metrics``
    Cache-decision evaluation metrics (precision / recall / F-beta / accuracy).
``repro.experiments``
    One module per paper table/figure regenerating the reported series.
"""

from repro.baselines.gptcache import GPTCache, GPTCacheConfig
from repro.core.cache import MeanCache, MeanCacheConfig, CacheDecision, CacheEntry
from repro.core.client import MeanCacheClient
from repro.embeddings.zoo import load_encoder, ENCODER_SPECS
from repro.llm.service import SimulatedLLMService, LLMServiceConfig
from repro.serving import FleetSimulator, Trace, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "MeanCache",
    "MeanCacheConfig",
    "MeanCacheClient",
    "CacheDecision",
    "CacheEntry",
    "GPTCache",
    "GPTCacheConfig",
    "load_encoder",
    "ENCODER_SPECS",
    "SimulatedLLMService",
    "LLMServiceConfig",
    "FleetSimulator",
    "Trace",
    "WorkloadGenerator",
    "__version__",
]
